"""The front router: one protocol endpoint over N shard workers.

:class:`ShardRouter` rides the same
:class:`~repro.serve.http.AsyncHttpServer` core as the workers it
fronts, so a cluster is indistinguishable from a single ``repro serve``
to any client — same versioned documents, same typed errors, same
canonical (byte-identical) response bodies, same drain semantics.  Per
request it:

* computes the :class:`~repro.exec.keys.ExperimentKey` digest exactly
  as the worker will (including the server-side default scale), asks
  the :class:`~repro.shard.ring.HashRing` for the owner, and forwards
  the *original* body verbatim — the worker re-derives the same key,
  so placement and execution can never disagree;
* applies per-shard admission: at most ``max_inflight`` router-side
  requests per shard, the next one getting the standard ``429`` +
  ``Retry-After`` rejection (workers keep their own ``max_queue`` as
  the second line of defence);
* forwards the request id header, so the worker's span tree shares the
  client's trace id — one trace across the router hop;
* fans ``/v1/batch`` out as per-shard sub-batches and reassembles the
  items in request order (a shard failure turns into per-item typed
  error documents, never a lost batch);
* aggregates the ops plane: ``/healthz`` polls every worker,
  ``/statusz`` embeds per-shard status plus cluster totals, and
  ``/metrics`` merges the workers' ``/metricsz`` registry snapshots —
  each relabelled ``shard=<id>`` — into one Prometheus exposition
  (histograms compose exactly; the router's own series carry
  ``shard=router``).

Drain is a *handoff*, not an outage: ``drain_shard()`` parks new
requests for the leaving shard on a gate, waits out its in-flight
work, stops the worker (its server drains and flushes), removes it
from the ring, rebalances its partition into the survivors, then
releases the gate — parked requests re-route and hit warm entries.
Zero lost requests, zero re-simulation.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time

from repro.obs.context import REQUEST_ID_HEADER
from repro.obs.tracer import span, use_tracer
from repro.serve.http import (
    SHARD_HEADER,
    AsyncHttpServer,
    HttpRequest,
    current_request_id,
)
from repro.serve.protocol import (
    BATCH_RESPONSE_RECORD,
    PROTOCOL_VERSION,
    ProtocolError,
    apply_default_scale,
    batch_request_doc,
    encode_doc,
    error_doc,
    parse_batch_request,
    parse_request,
)
from repro.telemetry import (
    MetricsRegistry,
    get_registry,
    label_snapshot,
    to_prometheus_text,
    use_registry,
)
from repro.util.log import get_logger

__all__ = ["SHARD_COUNTERS", "ShardRouter"]

_LOG = get_logger("shard.router")

#: Router-side counters, pre-registered at zero like the serve ones.
SHARD_COUNTERS = (
    "shard.requests",
    "shard.rejected",
    "shard.errors",
    "shard.drains",
)

#: The per-request headers relayed from a worker answer to the client.
_RELAY_HEADERS = (
    "x-repro-source",
    "x-repro-batch-size",
    "x-repro-sources",
    "x-repro-digest",
    "x-repro-shard",
    "retry-after",
)


async def _http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: bytes = b"",
    headers: dict[str, str] | None = None,
) -> tuple[int, bytes, dict[str, str]]:
    """One HTTP/1.1 exchange over a fresh connection (router → worker)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Content-Type: application/json\r\n"
            f"{extra}"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("ascii") + body)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        with contextlib.suppress(ConnectionError, OSError):
            await writer.wait_closed()
    header_blob, _, rest = raw.partition(b"\r\n\r\n")
    lines = header_blob.decode("latin-1").split("\r\n")
    try:
        status = int(lines[0].split()[1])
    except (IndexError, ValueError):
        raise OSError(f"malformed response from {host}:{port}") from None
    response_headers: dict[str, str] = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        response_headers[name.strip().lower()] = value.strip()
    length = int(response_headers.get("content-length") or len(rest))
    return status, rest[:length], response_headers


class ShardRouter(AsyncHttpServer):
    """Consistent-hash front end over the shard workers.

    ``backends`` maps shard id → ``(host, port)`` and must cover every
    ring member.  ``stop_worker`` (optional, from the cluster) makes
    ``drain_shard`` / ``POST /admin/drain`` available: a blocking
    callable that SIGTERMs one worker and waits for its drain.
    ``store_root`` (the partition root) is required for drain and
    reported in ``/statusz``.
    """

    def __init__(
        self,
        ring,
        backends: dict[str, tuple[str, int]],
        host: str = "127.0.0.1",
        port: int = 0,
        store_root=None,
        registry=None,
        tracer=None,
        max_inflight: int = 64,
        request_timeout_s: float = 300.0,
        fetch_timeout_s: float = 10.0,
        drain_grace_s: float = 30.0,
        default_scale: int = 0,
        stop_worker=None,
    ):
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        super().__init__(host=host, port=port, drain_grace_s=drain_grace_s)
        self.ring = ring
        self.backends = dict(backends)
        self.store_root = store_root
        self.registry = registry
        self.tracer = tracer
        self.max_inflight = max_inflight
        self.request_timeout_s = request_timeout_s
        #: Ops fan-out timeout (healthz/statusz/metrics polls) — short,
        #: so one wedged worker can't stall the cluster view.
        self.fetch_timeout_s = fetch_timeout_s
        self.default_scale = default_scale
        self._stop_worker = stop_worker
        self._inflight: dict[str, int] = {m: 0 for m in ring.members}
        #: shard id → gate parking its requests during a drain.
        self._gates: dict[str, asyncio.Event] = {}

    def _reg(self):
        """The router's own registry, falling back to the ambient one.

        Router-side counters must land in a deterministic place even
        when several servers share one process (in-thread test
        harnesses): the process-global active registry is whichever
        ``use_registry`` happened last, so prefer ``self.registry``.
        """
        return self.registry if self.registry is not None else get_registry()

    # -- lifecycle ----------------------------------------------------------------

    def serve_forever(self, install_signals: bool = True) -> int:
        with contextlib.ExitStack() as stack:
            if self.registry is not None:
                stack.enter_context(use_registry(self.registry))
            if self.tracer is not None:
                stack.enter_context(use_tracer(self.tracer))
            return super().serve_forever(install_signals)

    async def _startup(self) -> None:
        # Coverage is checked here, not in __init__: the cluster
        # constructs the router first and fills ``backends`` as workers
        # come up, before serving.
        missing = [m for m in self.ring.members if m not in self.backends]
        if missing:
            raise ValueError(f"ring members without backends: {missing}")
        for name in SHARD_COUNTERS:
            self._reg().counter(name)

    def _describe(self) -> str:
        return (
            f"router over {len(self.backends)} shard(s) "
            f"{list(self.ring.members)}, max_inflight={self.max_inflight}/shard"
        )

    # -- routing ------------------------------------------------------------------

    async def _route(self, path: str, request: HttpRequest, writer) -> None:
        if path == "/healthz":
            await self._handle_healthz(request, writer)
        elif path == "/statusz":
            await self._handle_statusz(request, writer)
        elif path == "/metrics":
            await self._handle_metrics(request, writer)
        elif path == "/metricsz":
            await self._handle_metricsz(request, writer)
        elif path == "/debugz":
            await self._handle_debugz(request, writer)
        elif path == "/v1/experiment":
            await self._handle_experiment(request, writer)
        elif path == "/v1/batch":
            await self._handle_batch(request, writer)
        elif path == "/admin/drain":
            await self._handle_drain(request, writer)
        else:
            raise ProtocolError("not_found", f"no such endpoint {path!r}")

    # -- placement + admission ----------------------------------------------------

    def _routing_digest(self, mapping) -> str:
        """The key digest the owning worker will derive for ``mapping``."""
        mapping = apply_default_scale(mapping, self.default_scale)
        try:
            return mapping.to_key().digest
        except ProtocolError:
            raise
        except (ValueError, KeyError, OSError) as exc:
            raise ProtocolError("bad_request", f"cannot build key: {exc}") from exc

    async def _owner(self, digest: str) -> str:
        """The digest's current owner, waiting out any drain in progress."""
        while True:
            owner = self.ring.route(digest)
            gate = self._gates.get(owner)
            if gate is None:
                return owner
            # The owner is mid-drain: park until its keys have moved,
            # then re-ask the ring (the member will be gone).
            await gate.wait()

    def _admit(self, shard: str, n: int = 1) -> None:
        if self.draining:
            raise ProtocolError(
                "draining", "router is draining; retry later", retry_after_s=1.0
            )
        reg = self._reg()
        if self._inflight.get(shard, 0) + n > self.max_inflight:
            reg.counter("shard.rejected", shard=shard).inc()
            raise ProtocolError(
                "overloaded",
                f"shard {shard} at capacity "
                f"({self.max_inflight} router-side requests in flight)",
                retry_after_s=1.0,
            )
        self._inflight[shard] = self._inflight.get(shard, 0) + n
        reg.gauge("shard.inflight", shard=shard).set(self._inflight[shard])

    def _release(self, shard: str, n: int = 1) -> None:
        self._inflight[shard] = max(0, self._inflight.get(shard, 0) - n)
        self._reg().gauge("shard.inflight", shard=shard).set(
            self._inflight[shard]
        )

    async def _forward(
        self,
        shard: str,
        method: str,
        path: str,
        body: bytes = b"",
        timeout_s: float | None = None,
    ) -> tuple[int, bytes, dict[str, str]]:
        """One exchange with a shard worker, typed errors on transport."""
        host, port = self.backends[shard]
        headers = {}
        request_id = current_request_id()
        if request_id:
            # The hop that stitches the trace: the worker echoes this id
            # and roots its spans under it.
            headers[REQUEST_ID_HEADER] = request_id
        try:
            return await asyncio.wait_for(
                _http_request(host, port, method, path, body, headers),
                timeout_s or self.request_timeout_s,
            )
        except asyncio.TimeoutError:
            self._reg().counter("shard.errors", shard=shard).inc()
            raise ProtocolError(
                "timeout", f"shard {shard} exceeded {timeout_s or self.request_timeout_s:.0f}s"
            ) from None
        except OSError as exc:
            self._reg().counter("shard.errors", shard=shard).inc()
            raise ProtocolError(
                "bad_gateway", f"shard {shard} unreachable: {exc}"
            ) from exc

    @staticmethod
    def _relay_headers(headers: dict[str, str]) -> dict[str, str]:
        canonical = {
            "x-repro-source": "X-Repro-Source",
            "x-repro-batch-size": "X-Repro-Batch-Size",
            "x-repro-sources": "X-Repro-Sources",
            "x-repro-digest": "X-Repro-Digest",
            "x-repro-shard": SHARD_HEADER,
            "retry-after": "Retry-After",
        }
        return {
            canonical[lower]: headers[lower]
            for lower in _RELAY_HEADERS
            if lower in headers
        }

    # -- the protocol endpoints ---------------------------------------------------

    async def _handle_experiment(self, request: HttpRequest, writer) -> None:
        self._require_method(request, "POST")
        digest = self._routing_digest(parse_request(request.body))
        shard = await self._owner(digest)
        self._admit(shard)
        reg = self._reg()
        reg.counter("shard.requests", shard=shard).inc()
        start = time.perf_counter()
        try:
            with span(
                "router.request",
                trace_id=current_request_id() or None,
                shard=shard,
                digest=digest[:12],
            ) as root:
                status, body, headers = await self._forward(
                    shard, "POST", "/v1/experiment", request.body
                )
                root.set(status=status)
        finally:
            self._release(shard)
            reg.histogram("shard.request_seconds", shard=shard).observe(
                time.perf_counter() - start
            )
        # The worker's canonical bytes pass through untouched — that is
        # the whole byte-identity story: the cluster answers with
        # exactly the document one server would have produced.
        await self._respond(
            writer,
            status,
            body,
            extra_headers=self._relay_headers(headers),
            keep_alive=request.keep_alive,
        )

    async def _handle_batch(self, request: HttpRequest, writer) -> None:
        """Fan a batch out shard-by-shard, reassemble in request order."""
        self._require_method(request, "POST")
        mappings = parse_batch_request(request.body)
        # The raw per-item documents, for verbatim sub-batch forwarding.
        raw_items = json.loads(request.body.decode("utf-8"))["requests"]
        by_shard: dict[str, list[int]] = {}
        for index, mapping in enumerate(mappings):
            shard = await self._owner(self._routing_digest(mapping))
            by_shard.setdefault(shard, []).append(index)
        items: list[dict | None] = [None] * len(mappings)
        sources: list[str] = ["error"] * len(mappings)
        reg = self._reg()

        async def run_shard(shard: str, indices: list[int]) -> None:
            self._admit(shard, len(indices))
            reg.counter("shard.requests", shard=shard).inc(len(indices))
            start = time.perf_counter()
            try:
                sub_body = encode_doc(
                    batch_request_doc([raw_items[i] for i in indices])
                )
                status, body, headers = await self._forward(
                    shard, "POST", "/v1/batch", sub_body
                )
                doc = json.loads(body.decode("utf-8"))
                if status != 200 or doc.get("record") != BATCH_RESPONSE_RECORD:
                    # Whole-sub-batch rejection (e.g. worker 429): every
                    # item of this shard gets the typed error, in-band.
                    err = doc.get("error", {}) if isinstance(doc, dict) else {}
                    item = error_doc(
                        err.get("code", "bad_gateway"),
                        err.get("message", f"shard {shard} returned {status}"),
                        doc.get("retry_after_s") if isinstance(doc, dict) else None,
                    )
                    for i in indices:
                        items[i] = item
                    return
                shard_sources = (
                    headers.get("x-repro-sources", "").split(",")
                    if headers.get("x-repro-sources")
                    else [""] * len(indices)
                )
                for position, i in enumerate(indices):
                    items[i] = doc["items"][position]
                    if position < len(shard_sources):
                        sources[i] = shard_sources[position]
            except ProtocolError as exc:
                item = error_doc(exc.code, exc.message, exc.retry_after_s)
                for i in indices:
                    items[i] = item
            finally:
                self._release(shard, len(indices))
                reg.histogram("shard.request_seconds", shard=shard).observe(
                    time.perf_counter() - start
                )

        with span(
            "router.batch",
            trace_id=current_request_id() or None,
            size=len(mappings),
            shards=len(by_shard),
        ):
            await asyncio.gather(
                *(run_shard(s, idx) for s, idx in sorted(by_shard.items()))
            )
        doc = {
            "record": BATCH_RESPONSE_RECORD,
            "protocol_version": PROTOCOL_VERSION,
            "items": items,
        }
        await self._respond(
            writer,
            200,
            encode_doc(doc),
            extra_headers={
                "X-Repro-Batch-Size": str(len(mappings)),
                "X-Repro-Sources": ",".join(sources),
            },
            keep_alive=request.keep_alive,
        )

    # -- the aggregated ops plane -------------------------------------------------

    async def _poll_shards(self, path: str) -> dict[str, dict | None]:
        """GET ``path`` from every backend concurrently (None = unreachable)."""

        async def poll(shard: str) -> tuple[str, dict | None]:
            try:
                status, body, _ = await self._forward(
                    shard, "GET", path, timeout_s=self.fetch_timeout_s
                )
                if status != 200:
                    return shard, None
                return shard, json.loads(body.decode("utf-8"))
            except (ProtocolError, ValueError):
                return shard, None

        results = await asyncio.gather(*(poll(s) for s in sorted(self.backends)))
        return dict(results)

    async def _handle_healthz(self, request: HttpRequest, writer) -> None:
        self._require_method(request, "GET")
        polled = await self._poll_shards("/healthz")
        shards = {
            shard: (doc or {}).get("status", "unreachable")
            for shard, doc in polled.items()
        }
        if self.draining:
            status = "draining"
        elif all(state == "ok" for state in shards.values()):
            status = "ok"
        else:
            status = "degraded"
        await self._respond(
            writer,
            200,
            encode_doc({"status": status, "shards": shards}),
            keep_alive=request.keep_alive,
        )

    async def _handle_statusz(self, request: HttpRequest, writer) -> None:
        self._require_method(request, "GET")
        reg = self._reg()
        shards = await self._poll_shards("/statusz")
        totals = {"simulations": 0, "store_entries": 0, "active": 0}
        for doc in shards.values():
            if not doc:
                continue
            totals["simulations"] += doc.get("backend", {}).get("simulations", 0)
            totals["active"] += doc.get("admission", {}).get("active", 0)
            store = doc.get("store") or {}
            totals["store_entries"] += store.get("entries", 0)
        doc = {
            "record": "repro-shard-status",
            "protocol_version": PROTOCOL_VERSION,
            "uptime_s": round(self.uptime_s, 3),
            "draining": self.draining,
            "ring": self.ring.describe(),
            "router": {
                "max_inflight": self.max_inflight,
                "inflight": dict(sorted(self._inflight.items())),
                "parked": sorted(self._gates),
                "rejected": reg.counter("shard.rejected").value,
                "drains": reg.counter("shard.drains").value,
                "store_root": str(self.store_root) if self.store_root else None,
            },
            "totals": totals,
            "shards": shards,
        }
        await self._respond(
            writer,
            200,
            encode_doc(doc),
            extra_headers={SHARD_HEADER: "router"},
            keep_alive=request.keep_alive,
        )

    async def _handle_metrics(self, request: HttpRequest, writer) -> None:
        """Cluster-wide Prometheus exposition: every series shard-labelled.

        Each worker's ``/metricsz`` snapshot is relabelled
        ``shard=<id>`` and folded into one fresh registry together with
        the router's own series (``shard=router``); the shared
        histogram bucket bounds make even latency distributions compose
        exactly across the cluster.
        """
        self._require_method(request, "GET")
        merged = MetricsRegistry()
        for shard, doc in (await self._poll_shards("/metricsz")).items():
            if not doc:
                self._reg().counter("shard.errors", shard=shard).inc()
                continue
            merged.merge_snapshot(
                label_snapshot(doc.get("metrics", {}), shard=shard)
            )
        merged.merge_snapshot(
            label_snapshot(self._reg().as_dict(), shard="router")
        )
        text = to_prometheus_text(merged)
        await self._respond(
            writer,
            200,
            text.encode("utf-8"),
            content_type="text/plain; version=0.0.4",
            extra_headers={SHARD_HEADER: "router"},
            keep_alive=request.keep_alive,
        )

    # -- drain / membership -------------------------------------------------------

    async def drain_shard(self, shard: str) -> dict:
        """Warm-handoff drain of one shard; returns a summary document.

        Sequence: park new arrivals for the shard → wait out its
        in-flight requests → stop its worker (the server drains and
        flushes its partition) → remove it from the ring → rebalance
        its partition into the new owners → release the parked
        requests, which re-route onto the warm entries.
        """
        from repro.shard.partition import rebalance

        if shard not in self.ring:
            raise ProtocolError("bad_request", f"unknown shard {shard!r}")
        if shard in self._gates:
            raise ProtocolError("bad_request", f"shard {shard!r} already draining")
        if len(self.ring) == 1:
            raise ProtocolError("bad_request", "cannot drain the last shard")
        if self._stop_worker is None or self.store_root is None:
            raise ProtocolError(
                "bad_request", "this router does not manage worker lifecycle"
            )
        _LOG.info("draining shard %s", shard)
        gate = asyncio.Event()
        self._gates[shard] = gate
        loop = asyncio.get_running_loop()
        try:
            while self._inflight.get(shard, 0) > 0:
                await asyncio.sleep(0.01)
            # The worker's own SIGTERM drain flushes every admitted
            # request to its partition before the process exits 0.
            await loop.run_in_executor(None, self._stop_worker, shard)
            self.ring.remove(shard)
            self.backends.pop(shard, None)
            self._inflight.pop(shard, None)
            moved = await loop.run_in_executor(
                None, rebalance, self.store_root, self.ring
            )
        finally:
            # Always release parked requests — after a successful drain
            # they re-route; after a failure the shard is still there.
            del self._gates[shard]
            gate.set()
        self._reg().counter("shard.drains").inc()
        _LOG.info(
            "shard %s drained: %d entries rebalanced onto %s",
            shard,
            moved,
            list(self.ring.members),
        )
        return {
            "record": "repro-shard-drain",
            "shard": shard,
            "moved_entries": moved,
            "members": list(self.ring.members),
        }

    async def _handle_drain(self, request: HttpRequest, writer) -> None:
        self._require_method(request, "POST")
        try:
            doc = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise ProtocolError("bad_json", "drain body is not valid JSON") from None
        shard = doc.get("shard") if isinstance(doc, dict) else None
        if not isinstance(shard, str) or not shard:
            raise ProtocolError("bad_request", 'drain body needs {"shard": "<id>"}')
        summary = await self.drain_shard(shard)
        await self._respond(
            writer,
            200,
            encode_doc(summary),
            extra_headers={SHARD_HEADER: "router"},
            keep_alive=request.keep_alive,
        )

    def __repr__(self) -> str:
        return (
            f"ShardRouter({self.host}:{self.port}, "
            f"shards={list(self.ring.members)})"
        )
