"""Tag bit-vectors and cluster signatures (paper §4.2-4.3).

The paper assigns every loop iteration an *r*-bit tag ``Λ = λ0 λ1 … λ(r-1)``
where bit *k* is set iff the iteration touches data chunk ``π_k``.  Two
derived quantities drive the whole mapping algorithm:

* the **dot product** ``Λi • Λj`` — for 0/1 tags this equals
  ``popcount(Λi AND Λj)``, the number of data chunks the two tags share
  (the edge weight of the affinity graph, Fig. 5);
* the **bitwise sum** of the tags in a cluster — the cluster's
  *signature*.  Signatures are integer count vectors, so the dot product
  between signatures weighs chunks by how many member tags touch them.

Tags are sparse in practice (an iteration touches a handful of chunks out
of thousands), so :class:`Tag` stores the set of set-bit indices and the
universe size ``r``.  :class:`Signature` is a dense ``int64`` vector for
vectorised dot products; the clustering loop manipulates only a few dozen
signatures at a time, so dense storage is cheap.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

__all__ = ["Tag", "Signature", "popcount", "hamming_distance"]


def popcount(mask: int) -> int:
    """Number of set bits in an arbitrary-precision Python integer."""
    return int(mask).bit_count()


def hamming_distance(a: "Tag", b: "Tag") -> int:
    """Number of bit positions where two tags differ (paper §4.2)."""
    if a.nbits != b.nbits:
        raise ValueError(f"tag widths differ: {a.nbits} != {b.nbits}")
    return len(a.chunks.symmetric_difference(b.chunks))


class Tag:
    """An immutable *r*-bit data-chunk access tag.

    Parameters
    ----------
    chunks:
        Indices of the data chunks the tagged iteration(s) access,
        i.e. the positions of the set bits.
    nbits:
        The tag width *r* (total number of data chunks in the data space).
    """

    __slots__ = ("chunks", "nbits", "_hash")

    def __init__(self, chunks: Iterable[int], nbits: int):
        chunkset = frozenset(int(c) for c in chunks)
        if nbits <= 0:
            raise ValueError(f"tag width must be positive, got {nbits}")
        for c in chunkset:
            if not 0 <= c < nbits:
                raise ValueError(f"chunk index {c} outside [0, {nbits})")
        object.__setattr__(self, "chunks", chunkset)
        object.__setattr__(self, "nbits", int(nbits))
        object.__setattr__(self, "_hash", hash((chunkset, int(nbits))))

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("Tag is immutable")

    # -- classic representations -------------------------------------------------

    @classmethod
    def from_mask(cls, mask: int, nbits: int) -> "Tag":
        """Build a tag from a Python-int bitmask (bit k == chunk k)."""
        if mask < 0:
            raise ValueError("mask must be non-negative")
        if mask >> nbits:
            raise ValueError(f"mask has bits above width {nbits}")
        chunks = []
        k = 0
        m = mask
        while m:
            if m & 1:
                chunks.append(k)
            m >>= 1
            k += 1
        return cls(chunks, nbits)

    @classmethod
    def from_bitstring(cls, bits: str) -> "Tag":
        """Build a tag from the paper's literal notation, e.g. ``"101010000000"``.

        The leftmost character is ``λ0`` (chunk 0), matching Fig. 8.
        """
        if not bits or any(ch not in "01" for ch in bits):
            raise ValueError(f"not a bitstring: {bits!r}")
        return cls((k for k, ch in enumerate(bits) if ch == "1"), len(bits))

    @property
    def mask(self) -> int:
        """The tag as a Python-int bitmask (bit k == chunk k)."""
        m = 0
        for c in self.chunks:
            m |= 1 << c
        return m

    def to_bitstring(self) -> str:
        """Render in the paper's ``λ0 λ1 …`` left-to-right notation."""
        return "".join("1" if k in self.chunks else "0" for k in range(self.nbits))

    def to_vector(self) -> np.ndarray:
        """Dense 0/1 ``int64`` vector of length ``nbits``."""
        v = np.zeros(self.nbits, dtype=np.int64)
        if self.chunks:
            v[np.fromiter(self.chunks, dtype=np.int64)] = 1
        return v

    # -- algebra -----------------------------------------------------------------

    def dot(self, other: "Tag") -> int:
        """``Λi • Λj`` = number of common set bits = popcount(AND)."""
        if self.nbits != other.nbits:
            raise ValueError(f"tag widths differ: {self.nbits} != {other.nbits}")
        small, large = (
            (self.chunks, other.chunks)
            if len(self.chunks) <= len(other.chunks)
            else (other.chunks, self.chunks)
        )
        return sum(1 for c in small if c in large)

    def hamming(self, other: "Tag") -> int:
        return hamming_distance(self, other)

    def union(self, other: "Tag") -> "Tag":
        if self.nbits != other.nbits:
            raise ValueError(f"tag widths differ: {self.nbits} != {other.nbits}")
        return Tag(self.chunks | other.chunks, self.nbits)

    def intersection(self, other: "Tag") -> "Tag":
        if self.nbits != other.nbits:
            raise ValueError(f"tag widths differ: {self.nbits} != {other.nbits}")
        return Tag(self.chunks & other.chunks, self.nbits)

    def popcount(self) -> int:
        """Number of distinct data chunks this tag touches."""
        return len(self.chunks)

    def signature(self) -> "Signature":
        """Promote to a count-vector signature (each set bit counts once)."""
        return Signature(self.to_vector())

    # -- dunder ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Tag)
            and self.nbits == other.nbits
            and self.chunks == other.chunks
        )

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return self.nbits

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self.chunks))

    def __contains__(self, chunk: int) -> bool:
        return chunk in self.chunks

    def __repr__(self) -> str:
        if self.nbits <= 32:
            return f"Tag({self.to_bitstring()!r})"
        return f"Tag(nbits={self.nbits}, chunks={sorted(self.chunks)!r})"


class Signature:
    """A cluster signature: the element-wise ("bitwise") sum of member tags.

    The paper's clustering stage merges the pair of clusters whose
    signatures maximise the dot product ``αp • αq`` (Fig. 5, Stage 1).
    """

    __slots__ = ("counts",)

    def __init__(self, counts: np.ndarray):
        counts = np.asarray(counts, dtype=np.int64)
        if counts.ndim != 1:
            raise ValueError("signature must be a 1-D count vector")
        if (counts < 0).any():
            raise ValueError("signature counts must be non-negative")
        self.counts = counts

    @classmethod
    def zeros(cls, nbits: int) -> "Signature":
        return cls(np.zeros(nbits, dtype=np.int64))

    @classmethod
    def from_tags(cls, tags: Iterable[Tag], nbits: int) -> "Signature":
        sig = np.zeros(nbits, dtype=np.int64)
        for tag in tags:
            if tag.nbits != nbits:
                raise ValueError(f"tag width {tag.nbits} != signature width {nbits}")
            for c in tag.chunks:
                sig[c] += 1
        return cls(sig)

    @property
    def nbits(self) -> int:
        return int(self.counts.shape[0])

    def dot(self, other: "Signature | Tag") -> int:
        if isinstance(other, Tag):
            if other.nbits != self.nbits:
                raise ValueError("width mismatch")
            if not other.chunks:
                return 0
            idx = np.fromiter(other.chunks, dtype=np.int64)
            return int(self.counts[idx].sum())
        if other.nbits != self.nbits:
            raise ValueError("width mismatch")
        return int(np.dot(self.counts, other.counts))

    def add(self, other: "Signature | Tag") -> "Signature":
        """Return a new signature with ``other`` accumulated in."""
        if isinstance(other, Tag):
            other = other.signature()
        if other.nbits != self.nbits:
            raise ValueError("width mismatch")
        return Signature(self.counts + other.counts)

    def subtract(self, other: "Signature | Tag") -> "Signature":
        if isinstance(other, Tag):
            other = other.signature()
        if other.nbits != self.nbits:
            raise ValueError("width mismatch")
        out = self.counts - other.counts
        if (out < 0).any():
            raise ValueError("signature subtraction went negative")
        return Signature(out)

    def support(self) -> Tag:
        """The OR of member tags: which chunks the cluster touches at all."""
        return Tag(np.flatnonzero(self.counts).tolist(), self.nbits)

    def total(self) -> int:
        return int(self.counts.sum())

    def copy(self) -> "Signature":
        return Signature(self.counts.copy())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Signature) and np.array_equal(self.counts, other.counts)

    def __repr__(self) -> str:
        nz = np.flatnonzero(self.counts)
        pairs = {int(k): int(self.counts[k]) for k in nz[:16]}
        suffix = "…" if len(nz) > 16 else ""
        return f"Signature(nbits={self.nbits}, {pairs}{suffix})"
