"""Shared low-level utilities: tag bit-vectors, validation, RNG, reports."""

from repro.util.bitset import Tag, Signature, popcount, hamming_distance
from repro.util.validation import check_positive, check_nonnegative, check_in_range

__all__ = [
    "Tag",
    "Signature",
    "popcount",
    "hamming_distance",
    "check_positive",
    "check_nonnegative",
    "check_in_range",
]
