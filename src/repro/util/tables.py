"""Plain-text table rendering for the experiment harness.

The benchmark harness prints the same rows/series the paper's tables and
figures report; this module owns the formatting so every experiment
renders identically.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_percent", "format_ratio"]


def format_percent(value: float, digits: int = 1) -> str:
    """Render a fraction as a percentage string, e.g. ``0.263 -> '26.3%'``."""
    return f"{100.0 * value:.{digits}f}%"


def format_ratio(value: float, digits: int = 3) -> str:
    """Render a normalized ratio, e.g. ``0.737``."""
    return f"{value:.{digits}f}"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render a list of rows as an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    ncols = max(len(r) for r in cells)
    for r in cells:
        r.extend([""] * (ncols - len(r)))
    widths = [max(len(r[j]) for r in cells) for j in range(ncols)]

    def fmt_row(r: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(r, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(cells[0]))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in cells[1:])
    return "\n".join(lines)
