"""Small argument-validation helpers used across the library.

Centralising these keeps error messages uniform ("<name> must be …, got
<value>") and keeps the numeric hot paths free of ad-hoc branching.
"""

from __future__ import annotations

from typing import Any

__all__ = ["check_positive", "check_nonnegative", "check_in_range", "check_power_of_two"]


def check_positive(name: str, value: Any) -> int:
    """Validate that ``value`` is a positive integer and return it as int."""
    ivalue = _as_int(name, value)
    if ivalue <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return ivalue


def check_nonnegative(name: str, value: Any) -> int:
    """Validate that ``value`` is a non-negative integer and return it as int."""
    ivalue = _as_int(name, value)
    if ivalue < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return ivalue


def check_in_range(name: str, value: float, lo: float, hi: float) -> float:
    """Validate ``lo <= value <= hi`` and return ``value`` as float."""
    fvalue = float(value)
    if not lo <= fvalue <= hi:
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return fvalue


def check_power_of_two(name: str, value: Any) -> int:
    """Validate that ``value`` is a positive power of two."""
    ivalue = check_positive(name, value)
    if ivalue & (ivalue - 1):
        raise ValueError(f"{name} must be a power of two, got {value!r}")
    return ivalue


def _as_int(name: str, value: Any) -> int:
    if isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got bool")
    try:
        ivalue = int(value)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be an integer, got {value!r}") from exc
    if ivalue != value:
        raise TypeError(f"{name} must be an integer, got {value!r}")
    return ivalue
