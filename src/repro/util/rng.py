"""Deterministic random-number plumbing.

Every stochastic component (workload jitter, tie-breaking in the
"random order" execution of the unscheduled Inter-processor version,
synthetic traces) draws from a :func:`numpy.random.Generator` seeded
through here, so experiments are exactly reproducible run-to-run.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "derive_seed", "DEFAULT_SEED"]

#: Root seed used by the experiment harness unless overridden.
DEFAULT_SEED = 0x5CA1_AB1E


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from an integer seed."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def derive_seed(base: int, *components: int | str) -> int:
    """Derive a child seed from a base seed and a path of components.

    Stable across processes and Python versions (no builtin ``hash``):
    uses SeedSequence-style mixing via numpy.
    """
    entropy: list[int] = [int(base) & 0xFFFF_FFFF]
    for comp in components:
        if isinstance(comp, str):
            entropy.extend(comp.encode("utf-8"))
        else:
            entropy.append(int(comp) & 0xFFFF_FFFF)
    return int(np.random.SeedSequence(entropy).generate_state(1)[0])
