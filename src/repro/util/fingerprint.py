"""The canonical experiment-identity serialisations, in one place.

Four artifact families need to agree on what "the same experiment"
means: trace artifacts (:mod:`repro.trace.replay`), telemetry run
manifests (:mod:`repro.telemetry.manifest`), the exec layer's cached
results (:mod:`repro.exec.keys`) and the serve wire protocol
(:mod:`repro.serve.protocol`).  Historically each assembled the
(config, engine) identity itself from a shared config serialiser; as
fields arrive (per-level replacement policies, scenario specs) that
assembly drift becomes a silent cache-aliasing hazard — two different
experiments hashing to one digest, or one experiment hashing to two.

This module is now the only place the identity is built:

* :func:`config_fingerprint` / :func:`config_from_fingerprint` — the
  JSON-safe :class:`~repro.experiments.config.SystemConfig` round trip;
* :func:`engine_options` — canonicalised extra simulation options
  (``sync_counts``, a scenario fingerprint, …), JSON-round-tripped so
  int and str keys cannot alias;
* :func:`experiment_identity` — the full (workload, version, config,
  engine) document every consumer derives keys and payloads from;
* :func:`canonical_json` — the one true byte encoding (sorted keys, no
  whitespace).

Imports of the config classes happen lazily so this stays a leaf
module importable from anywhere in the package.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.config import SystemConfig

__all__ = [
    "canonical_json",
    "config_fingerprint",
    "config_from_fingerprint",
    "engine_options",
    "experiment_identity",
]


def canonical_json(doc: Any) -> str:
    """Canonical JSON encoding: sorted keys, no whitespace."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def config_fingerprint(config: "SystemConfig") -> dict:
    """A JSON-safe fingerprint of a config.

    The canonical serialisation shared by trace artifacts, telemetry
    run manifests, :mod:`repro.exec` experiment keys and the serve
    protocol, so the artifact families stay comparable.
    """
    return {
        "num_clients": config.num_clients,
        "num_io_nodes": config.num_io_nodes,
        "num_storage_nodes": config.num_storage_nodes,
        "chunk_elems": config.chunk_elems,
        "cache_elems": list(config.cache_elems),
        "policy": config.policy,
        "policies": list(config.policies) if config.policies else None,
        "balance_threshold": config.balance_threshold,
        "alpha": config.alpha,
        "beta": config.beta,
        "data_elems": config.data_elems,
        "seed": config.seed,
        "prefetch_degree": config.prefetch_degree,
        "writeback": config.writeback,
        "latency": {
            "level_ms": list(config.latency.level_ms),
            "sync_stall_ms": config.latency.sync_stall_ms,
            "compute_ms_per_iteration": config.latency.compute_ms_per_iteration,
        },
        "disk": {
            "rpm": config.disk.rpm,
            "avg_seek_ms": config.disk.avg_seek_ms,
            "transfer_mb_per_s": config.disk.transfer_mb_per_s,
            "capacity_gb": config.disk.capacity_gb,
            "sequential_discount": config.disk.sequential_discount,
        },
    }


def config_from_fingerprint(d: Mapping[str, Any]) -> "SystemConfig":
    """Rebuild a :class:`SystemConfig` from :func:`config_fingerprint` output.

    The inverse serialisation: process-pool workers and serve requests
    ship configs across process boundaries as fingerprints and
    reconstitute them here.  Fingerprints written before the
    ``policies`` field existed load with ``policies=None``.
    """
    from repro.experiments.config import SystemConfig
    from repro.simulator.engine import LatencyModel
    from repro.storage.disk import DiskParameters

    latency = d.get("latency") or {}
    disk = d.get("disk") or {}
    policies = d.get("policies")
    return SystemConfig(
        num_clients=d["num_clients"],
        num_io_nodes=d["num_io_nodes"],
        num_storage_nodes=d["num_storage_nodes"],
        chunk_elems=d["chunk_elems"],
        cache_elems=tuple(d["cache_elems"]),
        policy=d["policy"],
        policies=tuple(policies) if policies else None,
        balance_threshold=d["balance_threshold"],
        alpha=d["alpha"],
        beta=d["beta"],
        data_elems=d["data_elems"],
        seed=d["seed"],
        prefetch_degree=d["prefetch_degree"],
        writeback=d["writeback"],
        latency=LatencyModel(
            level_ms=tuple(latency["level_ms"]),
            sync_stall_ms=latency["sync_stall_ms"],
            compute_ms_per_iteration=latency["compute_ms_per_iteration"],
        ),
        disk=DiskParameters(**disk),
    )


def engine_options(
    engine: Mapping[str, Any] | None = None,
    scenario: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Canonicalise extra simulation options into one JSON-safe dict.

    The JSON round trip normalises key types (``{0: 2}`` and
    ``{"0": 2}`` become the same document) so equivalent options can
    never hash to different keys.  A scenario fingerprint folds in
    under the reserved ``"scenario"`` key, which is how two scenarios
    differing only in spec map to distinct
    :class:`~repro.exec.keys.ExperimentKey` digests.

    The simulation engine (``reference``/``fast``) is part of the
    identity: callers that do not pin one explicitly get the process
    default stamped in, so payloads built under one default and executed
    under another (e.g. in a pool worker) still name the engine the
    parent chose.
    """
    doc: dict[str, Any] = json.loads(canonical_json(dict(engine or {})))
    if "engine" not in doc:
        from repro.simulator.engines import get_default_engine

        doc["engine"] = get_default_engine()
    if scenario is not None:
        doc["scenario"] = json.loads(canonical_json(dict(scenario)))
    return doc


def experiment_identity(
    workload: str,
    version: str,
    config: "SystemConfig | Mapping[str, Any]",
    engine: Mapping[str, Any] | None = None,
    scenario: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """The canonical (workload, version, config, engine) identity doc.

    ``config`` may be a :class:`SystemConfig` or an already-serialised
    fingerprint.  Exec keys hash exactly this document; task payloads
    and serve requests carry it verbatim, so all three can never
    disagree about which cache entry an experiment names.
    """
    fingerprint = (
        dict(config) if isinstance(config, Mapping) else config_fingerprint(config)
    )
    return {
        "workload": workload,
        "version": version,
        "config": fingerprint,
        "engine": engine_options(engine, scenario),
    }
