"""Namespaced stdlib logging for the repro package.

Every module logs through a ``repro.*`` logger obtained from
:func:`get_logger`; the CLI calls :func:`configure_logging` once per
invocation (``--log-level``/``-v`` flags) to attach a stderr handler to
the ``repro`` root.  Library users who never configure anything get the
stdlib default (warnings and above via the last-resort handler), so
importing the package stays silent.
"""

from __future__ import annotations

import logging
import sys
from typing import IO

__all__ = ["get_logger", "configure_logging", "DEFAULT_LEVEL"]

_ROOT = "repro"

DEFAULT_LEVEL = "INFO"

#: Verbose runs show where a message came from; INFO runs stay terse.
_TERSE_FORMAT = "%(message)s"
_VERBOSE_FORMAT = "%(levelname)s %(name)s: %(message)s"


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` namespace.

    ``get_logger("cli")`` and ``get_logger("repro.cli")`` both return
    the ``repro.cli`` logger; module files typically pass ``__name__``.
    """
    if not name or name == _ROOT:
        return logging.getLogger(_ROOT)
    if name.startswith(_ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT}.{name}")


def configure_logging(
    level: int | str = DEFAULT_LEVEL, stream: IO[str] | None = None
) -> logging.Logger:
    """(Re)wire the ``repro`` root logger to one stderr stream handler.

    Idempotent: existing handlers on the root are replaced, so repeated
    CLI invocations in one process (tests, notebooks) never stack
    handlers or duplicate lines.  DEBUG level switches to a verbose
    format that names the emitting module.
    """
    if isinstance(level, str):
        parsed = logging.getLevelName(level.upper())
        if not isinstance(parsed, int):
            raise ValueError(f"unknown log level {level!r}")
        level = parsed
    root = logging.getLogger(_ROOT)
    root.setLevel(level)
    root.propagate = False
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    fmt = _VERBOSE_FORMAT if level <= logging.DEBUG else _TERSE_FORMAT
    handler.setFormatter(logging.Formatter(fmt))
    for old in list(root.handlers):
        root.removeHandler(old)
    root.addHandler(handler)
    return root
