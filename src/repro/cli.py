"""Command-line driver: ``repro <command>`` or ``python -m repro``.

Regenerates any of the paper's tables/figures from the shipped harness
and drives the trace subsystem:

.. code-block:: console

   $ repro table2
   $ repro figure11
   $ repro all --scale 4   # every experiment, in paper order
   $ repro suite           # raw per-(workload, version) metrics
   $ repro trace record --workload hf -o hf.trace.npz
   $ repro trace replay hf.trace.npz --cache-elems 2048,3072,12288
   $ repro trace diff --workload hf -a original -b inter+sched
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import config as config_mod
from repro.experiments import (
    discussion,
    explain,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure18,
    table2,
)
from repro.experiments.harness import run_suite
from repro.simulator.runner import VERSIONS
from repro.util.tables import format_table

__all__ = ["main", "EXPERIMENTS"]

#: Figure/table experiments in paper order (the ``all`` command's order).
EXPERIMENTS = {
    "table2": table2.run,
    "figure10": figure10.run,
    "figure11": figure11.run,
    "figure12": figure12.run,
    "figure13": figure13.run,
    "figure14": figure14.run,
    "figure18": figure18.run,
}


def _fail(message: str) -> int:
    print(f"repro: error: {message}", file=sys.stderr)
    return 2


def _config_from(args: argparse.Namespace):
    """Scaled config if ``--scale`` was given, else None (defaults)."""
    scale = getattr(args, "scale", 0)
    return config_mod.scaled_config(scale) if scale else None


# -- experiment commands ------------------------------------------------------------


def _cmd_experiment(args: argparse.Namespace) -> int:
    print(EXPERIMENTS[args.experiment](_config_from(args)).render())
    return 0


def _cmd_discussion(args: argparse.Namespace) -> int:
    for report in discussion.run(_config_from(args)):
        print(report.render())
        print()
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    config = _config_from(args)
    for name in EXPERIMENTS:
        print(EXPERIMENTS[name](config).render())
        print()
    for report in discussion.run(config):
        print(report.render())
        print()
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    try:
        report = explain.run(args.workload, _config_from(args))
    except KeyError as exc:
        return _fail(str(exc.args[0]))
    print(report.render())
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    config = _config_from(args) or config_mod.DEFAULT_CONFIG
    results = run_suite(config)
    if args.json:
        from repro.simulator.serialization import save_results_json

        save_results_json(args.json, results)
        print(f"raw results written to {args.json}", file=sys.stderr)
    headers = ["application", "version", "L1", "L2", "L3", "io (ms)", "exec (ms)"]
    rows = []
    for wname, per_version in results.items():
        for v in VERSIONS:
            r = per_version[v]
            rates = r.sim.miss_rates()
            rows.append(
                [
                    wname,
                    v,
                    f"{rates['L1']:.3f}",
                    f"{rates['L2']:.3f}",
                    f"{rates['L3']:.3f}",
                    f"{r.io_latency_ms:.0f}",
                    f"{r.execution_time_ms:.0f}",
                ]
            )
    print(format_table(headers, rows, title="Suite: raw metrics"))
    return 0


# -- trace commands -----------------------------------------------------------------


def _print_sim_summary(sim, title: str) -> None:
    rows = [
        [name, st.accesses, st.hits, st.misses, f"{st.miss_rate:.3f}"]
        for name, st in sim.level_stats.items()
    ]
    print(format_table(["level", "accesses", "hits", "misses", "miss rate"],
                       rows, title=title))
    print(
        f"  io latency: {sim.io_latency_ms:.1f} ms   "
        f"execution: {sim.execution_time_ms:.1f} ms   "
        f"disk reads/writes: {sim.disk_reads}/{sim.disk_writes}"
    )


def _cmd_trace_record(args: argparse.Namespace) -> int:
    from repro.trace import (
        MemoryRecorder,
        record,
        replay,
        save_artifact,
        write_events_jsonl,
    )

    config = _config_from(args)
    try:
        artifact = record(args.workload, config, args.mapper)
    except KeyError as exc:
        return _fail(str(exc.args[0]))
    except ValueError as exc:
        return _fail(str(exc))
    try:
        save_artifact(args.out, artifact)
    except OSError as exc:
        return _fail(str(exc))
    print(
        f"recorded {artifact.workload}/{artifact.mapper_version}: "
        f"{artifact.num_clients} clients, {artifact.total_requests()} requests "
        f"-> {args.out} (format v{artifact.format_version})",
        file=sys.stderr,
    )
    if args.events:
        rec = MemoryRecorder()
        replay(artifact, recorder=rec)
        try:
            n = write_events_jsonl(
                args.events,
                rec.events,
                meta={
                    "workload": artifact.workload,
                    "mapper_version": artifact.mapper_version,
                },
            )
        except OSError as exc:
            return _fail(str(exc))
        print(f"{n} events -> {args.events}", file=sys.stderr)
    return 0


def _cmd_trace_export(args: argparse.Namespace) -> int:
    from repro.trace import (
        MemoryRecorder,
        load_artifact,
        replay,
        write_chrome_trace,
        write_events_jsonl,
    )

    try:
        artifact = load_artifact(args.artifact)
    except (OSError, ValueError) as exc:
        return _fail(str(exc))
    rec = MemoryRecorder()
    replay(artifact, recorder=rec)
    meta = {
        "workload": artifact.workload,
        "mapper_version": artifact.mapper_version,
    }
    level_names = artifact.config.build_hierarchy().level_names()
    try:
        if args.format == "chrome":
            write_chrome_trace(args.out, rec.events, level_names, meta)
        else:
            write_events_jsonl(args.out, rec.events, meta)
    except OSError as exc:
        return _fail(str(exc))
    print(
        f"{len(rec.events)} events ({args.format}) -> {args.out}", file=sys.stderr
    )
    return 0


def _cmd_trace_replay(args: argparse.Namespace) -> int:
    from repro.trace import load_artifact, replay, with_cache_overrides

    try:
        artifact = load_artifact(args.artifact)
    except (OSError, ValueError) as exc:
        return _fail(str(exc))
    config = None
    if args.cache_elems or args.policy:
        cache_elems = None
        if args.cache_elems:
            try:
                parts = tuple(int(p) for p in args.cache_elems.split(","))
            except ValueError:
                return _fail(f"--cache-elems expects l1,l2,l3 integers, got {args.cache_elems!r}")
            if len(parts) != 3:
                return _fail("--cache-elems expects exactly three comma-separated sizes")
            cache_elems = parts
        config = with_cache_overrides(artifact, cache_elems, args.policy or None)
    sim = replay(artifact, config=config, prefetch_degree=args.prefetch_degree)
    _print_sim_summary(
        sim, f"Replay: {artifact.workload}/{artifact.mapper_version}"
    )
    return 0


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    from repro.trace import diff_artifacts, load_artifact, record

    if args.artifacts and len(args.artifacts) == 2:
        try:
            art_a = load_artifact(args.artifacts[0])
            art_b = load_artifact(args.artifacts[1])
        except (OSError, ValueError) as exc:
            return _fail(str(exc))
    elif args.artifacts:
        return _fail("diff takes exactly two artifact paths (or --workload mode)")
    elif args.workload:
        config = _config_from(args)
        try:
            art_a = record(args.workload, config, args.version_a)
            art_b = record(args.workload, config, args.version_b)
        except KeyError as exc:
            return _fail(str(exc.args[0]))
        except ValueError as exc:
            return _fail(str(exc))
    else:
        return _fail("diff needs two artifact paths or --workload")
    try:
        diff = diff_artifacts(art_a, art_b, top_n=args.top)
    except ValueError as exc:
        return _fail(str(exc))
    print(diff.render())
    return 0


# -- parser -------------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction harness for 'Computation Mapping for Multi-Level "
            "Storage Cache Hierarchies' (HPDC 2010)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )

    scale_parent = argparse.ArgumentParser(add_help=False)
    scale_parent.add_argument(
        "--scale",
        type=int,
        default=0,
        help="run at a reduced topology (e.g. 4 => 16 clients); 0 = default",
    )

    sub = parser.add_subparsers(dest="command", required=True, metavar="command")

    for name in EXPERIMENTS:
        p = sub.add_parser(
            name, parents=[scale_parent], help=f"regenerate {name}"
        )
        p.set_defaults(func=_cmd_experiment, experiment=name)

    p = sub.add_parser(
        "discussion", parents=[scale_parent], help="the §5.4/§6 discussion analyses"
    )
    p.set_defaults(func=_cmd_discussion)

    p = sub.add_parser(
        "all", parents=[scale_parent], help="every experiment, in paper order"
    )
    p.set_defaults(func=_cmd_all)

    p = sub.add_parser(
        "explain", parents=[scale_parent], help="miss-source attribution for one workload"
    )
    p.add_argument(
        "--workload", default="hf", help="workload to analyse (default: hf)"
    )
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser(
        "suite", parents=[scale_parent], help="raw per-(workload, version) metrics"
    )
    p.add_argument(
        "--json", default="", help="also dump raw results to this JSON file"
    )
    p.set_defaults(func=_cmd_suite)

    trace = sub.add_parser("trace", help="event tracing, record/replay, mapping diffs")
    tsub = trace.add_subparsers(dest="trace_command", required=True, metavar="action")

    p = tsub.add_parser(
        "record", parents=[scale_parent], help="record a workload artifact"
    )
    p.add_argument("--workload", default="hf", help="suite workload (default: hf)")
    p.add_argument(
        "--mapper",
        default="inter+sched",
        choices=VERSIONS,
        help="mapping version to record (default: inter+sched)",
    )
    p.add_argument("-o", "--out", required=True, help="artifact output path (.npz)")
    p.add_argument(
        "--events", default="", help="also write the event trace to this JSONL file"
    )
    p.set_defaults(func=_cmd_trace_record)

    p = tsub.add_parser("export", help="export an artifact's event trace")
    p.add_argument("artifact", help="recorded artifact path")
    p.add_argument(
        "--format",
        default="chrome",
        choices=("chrome", "jsonl"),
        help="chrome://tracing JSON (default) or raw JSONL events",
    )
    p.add_argument("-o", "--out", required=True, help="output path")
    p.set_defaults(func=_cmd_trace_export)

    p = tsub.add_parser(
        "replay", help="re-simulate an artifact (optionally under what-if overrides)"
    )
    p.add_argument("artifact", help="recorded artifact path")
    p.add_argument(
        "--prefetch-degree", type=int, default=None, help="override prefetch degree"
    )
    p.add_argument(
        "--cache-elems",
        default="",
        help="override per-node cache sizes, e.g. 2048,3072,12288",
    )
    p.add_argument("--policy", default="", help="override replacement policy")
    p.set_defaults(func=_cmd_trace_replay)

    p = tsub.add_parser(
        "diff", parents=[scale_parent], help="diff two traces of one workload"
    )
    p.add_argument(
        "artifacts", nargs="*", help="two recorded artifact paths (same workload)"
    )
    p.add_argument(
        "--workload", default="", help="record-and-diff mode: suite workload"
    )
    p.add_argument(
        "-a", "--version-a", default="original", choices=VERSIONS,
        help="baseline mapping version (default: original)",
    )
    p.add_argument(
        "-b", "--version-b", default="inter+sched", choices=VERSIONS,
        help="comparison mapping version (default: inter+sched)",
    )
    p.add_argument(
        "--top", type=int, default=10, help="top-N chunk movers to report"
    )
    p.set_defaults(func=_cmd_trace_diff)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    start = time.perf_counter()
    status = args.func(args)
    print(f"[{time.perf_counter() - start:.1f}s]", file=sys.stderr)
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
