"""Command-line driver: ``repro <experiment>`` or ``python -m repro``.

Regenerates any of the paper's tables/figures from the shipped harness:

.. code-block:: console

   $ repro table2
   $ repro figure11
   $ repro all            # every experiment, in paper order
   $ repro suite          # raw per-(workload, version) metrics
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import config as config_mod
from repro.experiments import (
    discussion,
    explain,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure18,
    table2,
)
from repro.experiments.harness import run_suite
from repro.simulator.runner import VERSIONS
from repro.util.tables import format_table

__all__ = ["main", "EXPERIMENTS"]

EXPERIMENTS = {
    "table2": table2.run,
    "figure10": figure10.run,
    "figure11": figure11.run,
    "figure12": figure12.run,
    "figure13": figure13.run,
    "figure14": figure14.run,
    "figure18": figure18.run,
}


def _run_suite_command(args: argparse.Namespace) -> None:
    config = (
        config_mod.scaled_config(args.scale) if args.scale else config_mod.DEFAULT_CONFIG
    )
    results = run_suite(config)
    if args.json:
        from repro.simulator.serialization import save_results_json

        save_results_json(args.json, results)
        print(f"raw results written to {args.json}", file=sys.stderr)
    headers = ["application", "version", "L1", "L2", "L3", "io (ms)", "exec (ms)"]
    rows = []
    for wname, per_version in results.items():
        for v in VERSIONS:
            r = per_version[v]
            rates = r.sim.miss_rates()
            rows.append(
                [
                    wname,
                    v,
                    f"{rates['L1']:.3f}",
                    f"{rates['L2']:.3f}",
                    f"{rates['L3']:.3f}",
                    f"{r.io_latency_ms:.0f}",
                    f"{r.execution_time_ms:.0f}",
                ]
            )
    print(format_table(headers, rows, title="Suite: raw metrics"))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction harness for 'Computation Mapping for Multi-Level "
            "Storage Cache Hierarchies' (HPDC 2010)"
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["discussion", "explain", "all", "suite"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--workload",
        default="hf",
        help="workload for the 'explain' analysis (default: hf)",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=0,
        help="run at a reduced topology (e.g. 4 => 16 clients); 0 = default",
    )
    parser.add_argument(
        "--json",
        default="",
        help="for 'suite': also dump raw results to this JSON file",
    )
    args = parser.parse_args(argv)

    start = time.perf_counter()
    if args.experiment == "suite":
        _run_suite_command(args)
    elif args.experiment == "discussion":
        for report in discussion.run():
            print(report.render())
            print()
    elif args.experiment == "explain":
        config = (
            config_mod.scaled_config(args.scale) if args.scale else None
        )
        print(explain.run(args.workload, config).render())
    elif args.experiment == "all":
        for name in ("table2", "figure10", "figure11", "figure12", "figure13", "figure14", "figure18"):
            print(EXPERIMENTS[name]().render())
            print()
        for report in discussion.run():
            print(report.render())
            print()
    else:
        config = (
            config_mod.scaled_config(args.scale) if args.scale else None
        )
        print(EXPERIMENTS[args.experiment](config).render())
    print(f"[{time.perf_counter() - start:.1f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
