"""Command-line driver: ``repro <command>`` or ``python -m repro``.

Regenerates any of the paper's tables/figures from the shipped harness
and drives the trace and telemetry subsystems:

.. code-block:: console

   $ repro table2
   $ repro figure11
   $ repro all --scale 4   # every experiment, in paper order
   $ repro all --workers 4 --cache ~/.cache/repro   # parallel + cached
   $ repro cache stats
   $ repro cache gc --max-bytes 50000000
   $ repro suite           # raw per-(workload, version) metrics
   $ repro serve --port 8080 --workers 4 --cache ~/.cache/repro
   $ repro request --url http://127.0.0.1:8080 --workload hf --scale 4
   $ repro table2 --scale 16 --telemetry run.json
   $ repro metrics show run.json
   $ repro metrics export run.json -o run.prom
   $ repro metrics diff run_a.json run_b.json
   $ repro trace record --workload hf -o hf.trace.npz
   $ repro trace replay hf.trace.npz --cache-elems 2048,3072,12288
   $ repro trace diff --workload hf -a original -b inter+sched
   $ repro table2 --trace spans.jsonl      # one span tree for the run
   $ repro serve --trace --span-log spans.jsonl
   $ repro obs spans spans.jsonl
   $ repro obs slo --url http://127.0.0.1:8080
   $ repro obs export spans.jsonl -o flame.json   # chrome://tracing
   $ repro obs tail spans.jsonl -f
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.experiments import config as config_mod
from repro.experiments import (
    discussion,
    explain,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure18,
    table2,
)
from repro.experiments.harness import run_suite
from repro.simulator.runner import VERSIONS
from repro.util.log import configure_logging, get_logger
from repro.util.tables import format_table

__all__ = ["main", "EXPERIMENTS"]

_LOG = get_logger("cli")

#: Figure/table experiments in paper order (the ``all`` command's order).
EXPERIMENTS = {
    "table2": table2.run,
    "figure10": figure10.run,
    "figure11": figure11.run,
    "figure12": figure12.run,
    "figure13": figure13.run,
    "figure14": figure14.run,
    "figure18": figure18.run,
}


def _fail(message: str) -> int:
    print(f"repro: error: {message}", file=sys.stderr)
    return 2


def _config_from(args: argparse.Namespace):
    """Scaled config if ``--scale`` was given, else None (defaults)."""
    scale = getattr(args, "scale", 0)
    return config_mod.scaled_config(scale) if scale else None


def _default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    return os.environ.get("REPRO_CACHE_DIR") or os.path.expanduser(
        "~/.cache/repro"
    )


def _cache_max_bytes(args: argparse.Namespace) -> int | None:
    """``--cache-max-bytes``, else ``$REPRO_CACHE_MAX_BYTES``, else None.

    Threaded into every :class:`ResultStore` the CLI opens, so one
    environment variable caps the store for cron jobs and CI without
    touching each command line.
    """
    value = getattr(args, "cache_max_bytes", None)
    if value is not None:
        return value
    env = os.environ.get("REPRO_CACHE_MAX_BYTES", "")
    if not env:
        return None
    try:
        return int(env)
    except ValueError:
        _LOG.warning("ignoring non-integer REPRO_CACHE_MAX_BYTES=%r", env)
        return None


def _invoke(args: argparse.Namespace) -> int:
    """Run the command, inside an execution context when one is requested.

    ``--cache DIR`` installs a persistent :class:`ResultStore`;
    ``--workers N`` (N > 1) a process-pool executor.  ``--workers``
    without ``--cache`` still gets an in-memory store so a run dedupes
    its own repeated (workload, config, version) triples.  Without
    either flag the command runs exactly as before.
    """
    engine = getattr(args, "engine", "")
    if engine:
        from repro.simulator.engines import set_default_engine

        set_default_engine(engine)
    workers = getattr(args, "workers", 0)
    cache = getattr(args, "cache", "")
    if args.command in ("serve", "shard") or (not workers and not cache):
        # serve/shard own their executor/store wiring (they outlive one
        # call); the engine default above still applies to them.
        return args.func(args)
    from repro.exec import (
        ExperimentExecutor,
        MemoryStore,
        ResultStore,
        use_execution,
    )

    executor = ExperimentExecutor(workers=workers) if workers > 1 else None
    store = (
        ResultStore(cache, size_cap_bytes=_cache_max_bytes(args))
        if cache
        else MemoryStore()
    )
    args._store = store
    with use_execution(executor=executor, store=store):
        return args.func(args)


def _note_report(args: argparse.Namespace, report) -> None:
    """Collect a rendered report for the run manifest, when one is open."""
    reports = getattr(args, "_reports", None)
    if reports is not None:
        reports.append(report)


# -- experiment commands ------------------------------------------------------------


def _cmd_experiment(args: argparse.Namespace) -> int:
    report = EXPERIMENTS[args.experiment](_config_from(args))
    _note_report(args, report)
    print(report.render())
    return 0


def _cmd_discussion(args: argparse.Namespace) -> int:
    for report in discussion.run(_config_from(args)):
        _note_report(args, report)
        print(report.render())
        print()
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    config = _config_from(args)
    from repro.exec import execute_plan, get_execution, plan_all

    ctx = get_execution()
    if ctx.executor is not None or ctx.store is not None:
        # Pre-execute one deduplicated plan covering every suite sweep
        # below: Figure 10/11 share all their triples, the sweeps share
        # the default point, and the figures then hit the store only.
        plan = plan_all(config)
        _LOG.info(
            "prewarming %d unique tasks (%d duplicates deduped)",
            len(plan),
            plan.duplicates,
        )
        from repro.exec.progress import ProgressReporter

        reporter = ProgressReporter(label="prewarm")
        try:
            execute_plan(plan, progress=reporter)
        finally:
            reporter.close()
    for name in EXPERIMENTS:
        report = EXPERIMENTS[name](config)
        _note_report(args, report)
        print(report.render())
        print()
    for report in discussion.run(config):
        _note_report(args, report)
        print(report.render())
        print()
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    try:
        report = explain.run(args.workload, _config_from(args))
    except KeyError as exc:
        return _fail(str(exc.args[0]))
    _note_report(args, report)
    print(report.render())
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    config = _config_from(args) or config_mod.DEFAULT_CONFIG
    results = run_suite(config)
    if args.json:
        from repro.simulator.serialization import save_results_json

        save_results_json(args.json, results)
        _LOG.info("raw results written to %s", args.json)
    headers = ["application", "version", "L1", "L2", "L3", "io (ms)", "exec (ms)"]
    rows = []
    for wname, per_version in results.items():
        for v in VERSIONS:
            r = per_version[v]
            rates = r.sim.miss_rates()
            rows.append(
                [
                    wname,
                    v,
                    f"{rates['L1']:.3f}",
                    f"{rates['L2']:.3f}",
                    f"{rates['L3']:.3f}",
                    f"{r.io_latency_ms:.0f}",
                    f"{r.execution_time_ms:.0f}",
                ]
            )
    print(format_table(headers, rows, title="Suite: raw metrics"))
    return 0


# -- serve commands -----------------------------------------------------------------


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.exec import ExperimentExecutor, MemoryStore, ResultStore
    from repro.obs import Tracer
    from repro.serve import MappingServer
    from repro.telemetry import MetricsRegistry, declare_pipeline_metrics

    executor = (
        ExperimentExecutor(workers=args.workers) if args.workers > 1 else None
    )
    # Always attach a store: without one, a warm key would re-simulate
    # the moment its in-flight window closes.
    store = (
        ResultStore(args.cache, size_cap_bytes=_cache_max_bytes(args))
        if args.cache
        else MemoryStore()
    )
    registry = MetricsRegistry()
    declare_pipeline_metrics(registry)
    tracer = None
    if args.trace or args.span_log:
        tracer = Tracer(
            capacity=args.span_ring, log_path=args.span_log or None
        )
        _LOG.info(
            "span tracing on (ring=%d%s); /debugz has the live view",
            args.span_ring,
            f", log={args.span_log}" if args.span_log else "",
        )
    server = MappingServer(
        host=args.host,
        port=args.port,
        executor=executor,
        store=store,
        registry=registry,
        tracer=tracer,
        max_queue=args.max_queue,
        max_batch=args.max_batch,
        max_wait_ms=args.batch_wait_ms,
        request_timeout_s=args.request_timeout,
        default_scale=args.scale,
    )
    try:
        return server.serve_forever()
    finally:
        if tracer is not None:
            tracer.close()


def _cmd_request(args: argparse.Namespace) -> int:
    import json as json_mod

    from repro.serve import ServeClient, ServeError

    client = ServeClient(args.url, timeout=args.timeout)
    scenario = getattr(args, "scenario", "") or None
    request_id = getattr(args, "request_id", "")
    retries = getattr(args, "retries", 0)
    try:
        if scenario is not None:
            resp = client.experiment(
                scale=args.scale,
                scenario=scenario,
                request_id=request_id,
                retries=retries,
            )
        else:
            resp = client.experiment(
                args.workload,
                args.mapper,
                scale=args.scale,
                request_id=request_id,
                retries=retries,
            )
    except ServeError as exc:
        tag = f" [request {exc.request_id}]" if exc.request_id else ""
        return _fail(f"{args.url}: {exc}{tag}")
    except OSError as exc:
        return _fail(f"{args.url}: {exc}")
    finally:
        client.close()
    if args.json:
        print(json_mod.dumps(resp.doc, indent=2, sort_keys=True))
        return 0
    from repro.simulator.serialization import result_from_dict

    result = result_from_dict(resp.result)
    what = scenario or f"{args.workload}/{args.mapper}"
    _print_sim_summary(
        result.sim,
        f"{what} via {args.url} "
        f"({resp.source or 'unknown'}, batch={resp.batch_size})",
    )
    shard = f"   shard: {resp.shard}" if resp.shard else ""
    print(f"  digest: {resp.digest[:12]}   request id: {resp.request_id}{shard}")
    return 0


# -- shard commands -----------------------------------------------------------------


def _cmd_shard_serve(args: argparse.Namespace) -> int:
    from repro.obs import Tracer
    from repro.shard.cluster import ShardCluster
    from repro.telemetry import MetricsRegistry, declare_pipeline_metrics

    if not args.cache:
        return _fail(
            "shard serve requires --cache DIR: the partition root is the "
            "warm-handoff contract (workers re-home its entries on resize)"
        )
    registry = MetricsRegistry()
    declare_pipeline_metrics(registry)
    tracer = None
    if args.trace or args.span_log:
        tracer = Tracer(
            capacity=args.span_ring, log_path=args.span_log or None
        )
    cluster = ShardCluster(
        shards=args.shards,
        root=args.cache,
        host=args.host,
        port=args.port,
        workers_per_shard=max(1, args.workers),
        max_queue=args.max_queue,
        max_batch=args.max_batch,
        batch_wait_ms=args.batch_wait_ms,
        request_timeout_s=args.request_timeout,
        max_inflight=args.max_inflight,
        default_scale=args.scale,
        cache_max_bytes=_cache_max_bytes(args),
        engine=args.engine,
        registry=registry,
        tracer=tracer,
    )
    try:
        return cluster.serve_forever()
    except RuntimeError as exc:
        return _fail(str(exc))
    finally:
        if tracer is not None:
            tracer.close()


def _cmd_shard_worker(args: argparse.Namespace) -> int:
    from repro.shard.worker import build_worker

    server = build_worker(
        shard_id=args.shard_id,
        root=args.root,
        host=args.host,
        port=args.port,
        workers=max(1, args.workers),
        max_queue=args.max_queue,
        max_batch=args.max_batch,
        max_wait_ms=args.batch_wait_ms,
        request_timeout_s=args.request_timeout,
        default_scale=args.scale,
        cache_max_bytes=_cache_max_bytes(args),
    )
    return server.serve_forever()


def _cmd_shard_status(args: argparse.Namespace) -> int:
    import json as json_mod

    from repro.serve import ServeClient, ServeError

    client = ServeClient(args.url, timeout=args.timeout)
    try:
        doc = client.statusz()
    except (ServeError, OSError) as exc:
        return _fail(f"{args.url}: {exc}")
    finally:
        client.close()
    if args.json or doc.get("record") != "repro-shard-status":
        print(json_mod.dumps(doc, indent=2, sort_keys=True))
        return 0
    ring = doc["ring"]
    router = doc["router"]
    totals = doc["totals"]
    members = ", ".join(ring["members"]) or "(none)"
    print(
        f"cluster: {len(ring['members'])} shard(s) [{members}] "
        f"vnodes={ring['vnodes']}"
    )
    inflight = router["inflight"]
    total_inflight = (
        sum(inflight.values()) if isinstance(inflight, dict) else inflight
    )
    parked = router["parked"]
    parked_n = len(parked) if isinstance(parked, list) else parked
    print(
        f"  router: inflight {total_inflight} "
        f"(cap {router['max_inflight']}/shard), parked {parked_n}, "
        f"rejected {router['rejected']}, drains {router['drains']}"
    )
    print(
        f"  totals: {totals['store_entries']} stored entries, "
        f"{totals['simulations']} simulations, {totals['active']} active"
    )
    for sid, sdoc in sorted(doc["shards"].items()):
        if not sdoc:
            print(f"  {sid}: UNREACHABLE")
            continue
        admission = sdoc["admission"]
        store = sdoc.get("store") or {}
        print(
            f"  {sid}: {store.get('entries', 0)} entries, "
            f"active {admission['active']}/{admission['max_queue']}, "
            f"simulations {sdoc['backend']['simulations']}"
        )
    return 0


def _cmd_shard_drain(args: argparse.Namespace) -> int:
    import json as json_mod

    from repro.serve import ServeClient, ServeError

    client = ServeClient(args.url, timeout=args.timeout)
    try:
        doc = client.admin_drain(args.shard)
    except (ServeError, OSError) as exc:
        return _fail(f"{args.url}: {exc}")
    finally:
        client.close()
    if args.json:
        print(json_mod.dumps(doc, indent=2, sort_keys=True))
        return 0
    members = ", ".join(doc.get("members", [])) or "(none)"
    print(
        f"drained {doc.get('shard')}: moved {doc.get('moved_entries', 0)} "
        f"warm entr{'y' if doc.get('moved_entries') == 1 else 'ies'}; "
        f"remaining members [{members}]"
    )
    return 0


# -- cache commands -----------------------------------------------------------------


def _open_store(args: argparse.Namespace):
    from repro.exec import ResultStore

    return ResultStore(
        args.cache or _default_cache_dir(),
        size_cap_bytes=_cache_max_bytes(args),
    )


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    store = _open_store(args)
    s = store.stats()
    rows = [
        ["directory", str(store.root)],
        ["entries", s.entries],
        ["results", s.results],
        ["reports", s.reports],
        ["bytes", s.bytes],
    ]
    print(format_table(["field", "value"], rows, title="Result store"))
    return 0


def _cmd_cache_gc(args: argparse.Namespace) -> int:
    store = _open_store(args)
    if args.max_bytes is None and store.size_cap_bytes is None:
        return _fail(
            "no byte budget: pass --max-bytes / --cache-max-bytes "
            "or set $REPRO_CACHE_MAX_BYTES"
        )
    before = store.stats()
    evicted = store.gc(args.max_bytes)
    after = store.stats()
    print(
        f"evicted {evicted} entr{'y' if evicted == 1 else 'ies'} "
        f"({before.bytes - after.bytes} bytes); "
        f"{after.entries} entries ({after.bytes} bytes) remain"
    )
    return 0


def _cmd_cache_clear(args: argparse.Namespace) -> int:
    store = _open_store(args)
    removed = store.clear()
    print(f"cleared {removed} entr{'y' if removed == 1 else 'ies'} from {store.root}")
    return 0


# -- campaign commands --------------------------------------------------------------


def _load_campaign_manifest(path: str):
    from repro.campaign import load_manifest

    try:
        return load_manifest(path)
    except OSError as exc:
        raise ValueError(str(exc)) from None


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    import json as json_mod
    import pathlib

    from repro.campaign import load_campaign_file, render_report, run_campaign
    from repro.exec.progress import ProgressReporter

    try:
        spec = load_campaign_file(args.spec)
    except (OSError, ValueError) as exc:
        return _fail(str(exc))
    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    reporter = ProgressReporter(label="cells")
    try:
        run = run_campaign(
            spec,
            base_config=_config_from(args),
            manifest_path=out / "manifest.json",
            progress=reporter,
            chunk_size=args.chunk_size,
        )
    finally:
        reporter.close()
    (out / "report.json").write_text(
        json_mod.dumps(run.report, indent=2, sort_keys=True) + "\n"
    )
    (out / "report.md").write_text(render_report(run.report))
    manifest = run.manifest
    statuses = ", ".join(
        f"{status}: {n}" for status, n in run.report["statuses"].items()
    )
    print(
        f"campaign {spec.name!r}: {manifest['total_cells']} cells "
        f"({statuses}) in {manifest['wall_clock_s']}s "
        f"({manifest['cells_per_s']} cells/s)"
    )
    exp = manifest.get("expansion", {})
    if exp.get("excluded") or exp.get("duplicates"):
        print(
            f"  expansion: {exp.get('excluded', 0)} excluded, "
            f"{exp.get('duplicates', 0)} duplicate keys collapsed"
        )
    print(f"manifest digest: {manifest['digest']}")
    print(f"report digest: {run.report['digest']}")
    print(f"outputs -> {out}/manifest.json, report.json, report.md")
    if run.failed:
        print(
            f"FAILED cells ({len(run.failed)}): {', '.join(run.failed[:10])}"
            + (" …" if len(run.failed) > 10 else ""),
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    try:
        doc = _load_campaign_manifest(args.manifest)
    except ValueError as exc:
        return _fail(str(exc))
    counts: dict[str, int] = {}
    for cell in doc.get("cells", {}).values():
        status = cell.get("status", "pending")
        counts[status] = counts.get(status, 0) + 1
    rows = [
        ["campaign", doc.get("name", "")],
        ["status", doc.get("status", "")],
        ["fingerprint", doc.get("fingerprint", "")[:16]],
        ["cells", f"{doc.get('completed', 0)}/{doc.get('total_cells', 0)}"],
    ]
    for status in ("cached", "simulated", "failed", "pending"):
        if counts.get(status):
            rows.append([f"  {status}", counts[status]])
    if doc.get("wall_clock_s") is not None:
        rows.append(["wall clock", f"{doc['wall_clock_s']}s"])
        rows.append(["cells/s", doc.get("cells_per_s")])
    events = doc.get("events", [])
    rows.append(["exec events", len(events)])
    store = doc.get("store", {})
    for phase_name in ("before", "after"):
        if phase_name in store:
            s = store[phase_name]
            rows.append(
                [
                    f"store {phase_name}",
                    f"{s.get('entries', 0)} entries, {s.get('bytes', 0)} bytes",
                ]
            )
    print(format_table(["field", "value"], rows, title="Campaign"))
    for event in events:
        kind = event.get("kind", "?")
        detail = ", ".join(
            f"{k}={v}" for k, v in sorted(event.items()) if k != "kind"
        )
        print(f"  event: {kind}" + (f" ({detail})" if detail else ""))
    failed = [
        label
        for label, cell in sorted(doc.get("cells", {}).items())
        if cell.get("status") == "failed"
    ]
    for label in failed:
        print(f"  failed: {label}")
    return 1 if failed else 0


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    import json as json_mod

    from repro.campaign import build_report, render_report

    try:
        doc = _load_campaign_manifest(args.manifest)
    except ValueError as exc:
        return _fail(str(exc))
    report = build_report(doc)
    if args.json:
        print(json_mod.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_report(report))
    print(f"report digest: {report['digest']}", file=sys.stderr)
    return 0


def _cmd_campaign_diff(args: argparse.Namespace) -> int:
    from repro.campaign import diff_manifests, render_diff

    try:
        doc_a = _load_campaign_manifest(args.manifest_a)
        doc_b = _load_campaign_manifest(args.manifest_b)
    except ValueError as exc:
        return _fail(str(exc))
    diff = diff_manifests(doc_a, doc_b)
    print(render_diff(diff))
    return 0 if diff["identical"] else 1


# -- metrics commands ---------------------------------------------------------------


def _render_phase_tree(nodes: list, depth: int = 0) -> list[str]:
    lines = []
    for node in nodes:
        calls = node.get("calls", 1)
        suffix = f"  (x{calls})" if calls > 1 else ""
        lines.append(
            f"  {'  ' * depth}{node['name']:<{30 - 2 * depth}}"
            f"{node['elapsed_s']:9.3f} s{suffix}"
        )
        lines.extend(_render_phase_tree(node.get("children", []), depth + 1))
    return lines


def _cmd_metrics_show(args: argparse.Namespace) -> int:
    from repro.telemetry import load_manifest

    try:
        doc = load_manifest(args.manifest)
    except (OSError, ValueError) as exc:
        return _fail(str(exc))
    versions = doc.get("versions", {})
    print(f"manifest: {args.manifest}")
    print(f"  command: {doc.get('command') or '-'}")
    print(f"  git commit: {doc.get('git_commit') or '-'}")
    print(
        "  versions: "
        + ", ".join(f"{k} {v}" for k, v in sorted(versions.items()))
    )
    if doc.get("seed") is not None:
        print(f"  seed: {doc['seed']}")
    phases = doc.get("phases", [])
    if phases:
        print("phases:")
        print("\n".join(_render_phase_tree(phases)))
    metrics = doc.get("metrics", {})
    counter_rows = [
        [e["name"], _labels_str(e.get("labels", {})), f"{e['value']:g}"]
        for e in metrics.get("counters", [])
    ]
    if counter_rows:
        print(format_table(["counter", "labels", "value"], counter_rows))
    gauge_rows = [
        [e["name"], _labels_str(e.get("labels", {})), f"{e['value']:g}"]
        for e in metrics.get("gauges", [])
    ]
    if gauge_rows:
        print(format_table(["gauge", "labels", "value"], gauge_rows))
    hist_rows = [
        [
            e["name"],
            _labels_str(e.get("labels", {})),
            e["count"],
            f"{e['sum']:g}",
            f"{e.get('mean', 0.0):g}",
            f"{e.get('max', 0.0):g}",
        ]
        for e in metrics.get("histograms", [])
    ]
    if hist_rows:
        print(
            format_table(
                ["histogram", "labels", "count", "sum", "mean", "max"], hist_rows
            )
        )
    for report in doc.get("reports", []):
        if report.get("summary"):
            pairs = ", ".join(
                f"{k}={v:.3f}" for k, v in report["summary"].items()
            )
            print(f"  {report['experiment_id']}: {pairs}")
    return 0


def _labels_str(labels: dict) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items())) or "-"


def _cmd_metrics_export(args: argparse.Namespace) -> int:
    from repro.telemetry import load_manifest, manifest_to_prometheus

    try:
        doc = load_manifest(args.manifest)
    except (OSError, ValueError) as exc:
        return _fail(str(exc))
    text = manifest_to_prometheus(doc)
    if args.out and args.out != "-":
        try:
            with open(args.out, "w") as fh:
                fh.write(text)
        except OSError as exc:
            return _fail(str(exc))
        _LOG.info("prometheus exposition -> %s", args.out)
    else:
        print(text, end="")
    return 0


def _cmd_metrics_diff(args: argparse.Namespace) -> int:
    from repro.telemetry import diff_manifests, load_manifest

    try:
        doc_a = load_manifest(args.manifest_a)
        doc_b = load_manifest(args.manifest_b)
        diff = diff_manifests(doc_a, doc_b)
    except (OSError, ValueError) as exc:
        return _fail(str(exc))
    print(diff.render())
    return 0


def _cmd_metrics_validate(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from repro.telemetry import validate_manifest

    try:
        doc = json.loads(pathlib.Path(args.manifest).read_text())
    except OSError as exc:
        return _fail(str(exc))
    except ValueError as exc:
        return _fail(f"{args.manifest}: not valid JSON ({exc})")
    problems = validate_manifest(doc)
    if problems:
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return _fail(f"{args.manifest}: {len(problems)} schema problem(s)")
    print(f"{args.manifest}: valid run manifest")
    return 0


# -- trace commands -----------------------------------------------------------------


def _print_sim_summary(sim, title: str) -> None:
    rows = [
        [name, st.accesses, st.hits, st.misses, f"{st.miss_rate:.3f}"]
        for name, st in sim.level_stats.items()
    ]
    print(format_table(["level", "accesses", "hits", "misses", "miss rate"],
                       rows, title=title))
    print(
        f"  io latency: {sim.io_latency_ms:.1f} ms   "
        f"execution: {sim.execution_time_ms:.1f} ms   "
        f"disk reads/writes: {sim.disk_reads}/{sim.disk_writes}"
    )


def _cmd_trace_record(args: argparse.Namespace) -> int:
    from repro.trace import (
        MemoryRecorder,
        record,
        replay,
        save_artifact,
        write_events_jsonl,
    )

    config = _config_from(args)
    try:
        artifact = record(args.workload, config, args.mapper)
    except KeyError as exc:
        return _fail(str(exc.args[0]))
    except ValueError as exc:
        return _fail(str(exc))
    try:
        save_artifact(args.out, artifact)
    except OSError as exc:
        return _fail(str(exc))
    _LOG.info(
        "recorded %s/%s: %d clients, %d requests -> %s (format v%d)",
        artifact.workload,
        artifact.mapper_version,
        artifact.num_clients,
        artifact.total_requests(),
        args.out,
        artifact.format_version,
    )
    if args.events:
        rec = MemoryRecorder()
        replay(artifact, recorder=rec)
        try:
            n = write_events_jsonl(
                args.events,
                rec.events,
                meta={
                    "workload": artifact.workload,
                    "mapper_version": artifact.mapper_version,
                },
            )
        except OSError as exc:
            return _fail(str(exc))
        _LOG.info("%d events -> %s", n, args.events)
    return 0


def _cmd_trace_export(args: argparse.Namespace) -> int:
    from repro.trace import (
        MemoryRecorder,
        load_artifact,
        replay,
        write_chrome_trace,
        write_events_jsonl,
    )

    try:
        artifact = load_artifact(args.artifact)
    except (OSError, ValueError) as exc:
        return _fail(str(exc))
    rec = MemoryRecorder()
    replay(artifact, recorder=rec)
    meta = {
        "workload": artifact.workload,
        "mapper_version": artifact.mapper_version,
    }
    level_names = artifact.config.build_hierarchy().level_names()
    try:
        if args.format == "chrome":
            write_chrome_trace(args.out, rec.events, level_names, meta)
        else:
            write_events_jsonl(args.out, rec.events, meta)
    except OSError as exc:
        return _fail(str(exc))
    _LOG.info("%d events (%s) -> %s", len(rec.events), args.format, args.out)
    return 0


def _cmd_trace_replay(args: argparse.Namespace) -> int:
    from repro.trace import load_artifact, replay, with_cache_overrides

    try:
        artifact = load_artifact(args.artifact)
    except (OSError, ValueError) as exc:
        return _fail(str(exc))
    config = None
    if args.cache_elems or args.policy:
        cache_elems = None
        if args.cache_elems:
            try:
                parts = tuple(int(p) for p in args.cache_elems.split(","))
            except ValueError:
                return _fail(f"--cache-elems expects l1,l2,l3 integers, got {args.cache_elems!r}")
            if len(parts) != 3:
                return _fail("--cache-elems expects exactly three comma-separated sizes")
            cache_elems = parts
        config = with_cache_overrides(artifact, cache_elems, args.policy or None)
    sim = replay(artifact, config=config, prefetch_degree=args.prefetch_degree)
    _print_sim_summary(
        sim, f"Replay: {artifact.workload}/{artifact.mapper_version}"
    )
    return 0


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    from repro.trace import diff_artifacts, load_artifact, record

    if args.artifacts and len(args.artifacts) == 2:
        try:
            art_a = load_artifact(args.artifacts[0])
            art_b = load_artifact(args.artifacts[1])
        except (OSError, ValueError) as exc:
            return _fail(str(exc))
    elif args.artifacts:
        return _fail("diff takes exactly two artifact paths (or --workload mode)")
    elif args.workload:
        config = _config_from(args)
        try:
            art_a = record(args.workload, config, args.version_a)
            art_b = record(args.workload, config, args.version_b)
        except KeyError as exc:
            return _fail(str(exc.args[0]))
        except ValueError as exc:
            return _fail(str(exc))
    else:
        return _fail("diff needs two artifact paths or --workload")
    try:
        diff = diff_artifacts(art_a, art_b, top_n=args.top)
    except ValueError as exc:
        return _fail(str(exc))
    print(diff.render())
    return 0


# -- scenario commands --------------------------------------------------------------


def _load_scenario(args: argparse.Namespace):
    """Resolve the scenario named on the command line (name or spec file)."""
    from repro.scenario import get_scenario, load_spec_file

    ref = args.scenario
    if ref.endswith((".json", ".yaml", ".yml")):
        return load_spec_file(ref)
    return get_scenario(ref)


def _cmd_scenario_list(args: argparse.Namespace) -> int:
    from repro.scenario import get_scenario, scenario_names

    rows = []
    for name in scenario_names():
        spec = get_scenario(name)
        rows.append([name, spec.kind, spec.description or "-"])
    print(format_table(["name", "kind", "description"], rows,
                       title="Registered scenarios"))
    return 0


def _cmd_scenario_show(args: argparse.Namespace) -> int:
    import json as json_mod

    from repro.scenario import spec_to_dict

    try:
        spec = _load_scenario(args)
    except (KeyError, OSError, ValueError) as exc:
        return _fail(str(exc.args[0] if isinstance(exc, KeyError) else exc))
    print(json_mod.dumps(spec_to_dict(spec), indent=2, sort_keys=True))
    return 0


def _cmd_scenario_validate(args: argparse.Namespace) -> int:
    from repro.scenario import get_scenario, load_spec_file, scenario_names

    if args.scenario:
        names = [args.scenario]
    else:
        names = scenario_names()
    problems = 0
    for ref in names:
        try:
            if ref.endswith((".json", ".yaml", ".yml")):
                spec = load_spec_file(ref)
            else:
                spec = get_scenario(ref)
            spec.deep_validate()
        except (KeyError, OSError, ValueError) as exc:
            problems += 1
            msg = exc.args[0] if isinstance(exc, KeyError) else exc
            print(f"  {ref}: INVALID ({msg})", file=sys.stderr)
        else:
            print(f"  {spec.name}: ok ({spec.kind})")
    if problems:
        return _fail(f"{problems} invalid scenario(s)")
    return 0


def _cmd_scenario_run(args: argparse.Namespace) -> int:
    from dataclasses import replace as dc_replace

    from repro.scenario import result_digest, run_scenario
    from repro.scenario.runner import scenario_key

    try:
        spec = _load_scenario(args)
        spec.deep_validate()
    except (KeyError, OSError, ValueError) as exc:
        return _fail(str(exc.args[0] if isinstance(exc, KeyError) else exc))
    if args.policies:
        parts = tuple(p.strip() for p in args.policies.split(","))
        if len(parts) != 3:
            return _fail("--policies expects l1,l2,l3 policy names")
        spec = dc_replace(spec, policies=parts)
    config = _config_from(args) or config_mod.DEFAULT_CONFIG
    version = args.mapper or None
    try:
        key = scenario_key(spec, config, version)
        result = run_scenario(spec, config, version)
    except (KeyError, ValueError) as exc:
        return _fail(str(exc.args[0] if isinstance(exc, KeyError) else exc))
    _print_sim_summary(
        result.sim, f"Scenario {spec.name} ({spec.kind}) as {key.workload}/{key.version}"
    )
    print(f"  key: {key.digest[:12]}   result digest: {result_digest(result)}")
    return 0


# -- obs commands -------------------------------------------------------------------


def _obs_spans_from(args: argparse.Namespace):
    """Load spans from the positional JSONL path or a server's /debugz."""
    from repro.obs import Span, read_spans_jsonl

    url = getattr(args, "url", "")
    if url:
        from repro.serve import ServeClient

        with ServeClient(url) as client:
            doc = client.debugz()
        return [Span.from_dict(d) for d in doc.get("recent", [])]
    return read_spans_jsonl(args.spans)


def _span_attrs_str(attrs: dict) -> str:
    return " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))


def _render_span_tree(nodes: list, depth: int = 0) -> list[str]:
    lines = []
    for node in nodes:
        s = node["span"]
        pad = "  " * depth
        attrs = _span_attrs_str(s.attrs)
        lines.append(
            f"  {pad}{s.name:<{max(34 - 2 * depth, len(s.name) + 1)}}"
            f"{s.elapsed_s * 1e3:10.3f} ms  pid={s.pid}"
            + (f"  {attrs}" if attrs else "")
        )
        lines.extend(_render_span_tree(node["children"], depth + 1))
    return lines


def _cmd_obs_spans(args: argparse.Namespace) -> int:
    from repro.obs import build_trees

    try:
        spans = _obs_spans_from(args)
    except (OSError, ValueError) as exc:
        return _fail(str(exc))
    if args.trace:
        spans = [s for s in spans if s.trace_id == args.trace]
    if not spans:
        print("no spans" + (f" for trace {args.trace}" if args.trace else ""))
        return 0
    trees = build_trees(spans)
    if args.last:
        trees = trees[-args.last :]
    for tree in trees:
        root = tree["span"]
        print(f"trace {root.trace_id}:")
        print("\n".join(_render_span_tree([tree])))
    return 0


def _cmd_obs_slo(args: argparse.Namespace) -> int:
    import json as json_mod

    from repro.obs import render_slo, slo_report

    url = getattr(args, "url", "")
    if url:
        # The server aggregates over its whole ring; use that directly
        # rather than the 50-span "recent" window.
        from repro.serve import ServeClient, ServeError

        try:
            with ServeClient(url) as client:
                report = client.debugz().get("slo", {})
        except (ServeError, OSError) as exc:
            return _fail(f"{url}: {exc}")
    else:
        try:
            report = slo_report(_obs_spans_from(args), top=args.top)
        except (OSError, ValueError) as exc:
            return _fail(str(exc))
    if args.json:
        print(json_mod.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_slo(report))
    return 0


def _cmd_obs_export(args: argparse.Namespace) -> int:
    from repro.obs import spans_to_chrome, write_chrome_spans

    try:
        spans = _obs_spans_from(args)
    except (OSError, ValueError) as exc:
        return _fail(str(exc))
    if args.trace:
        spans = [s for s in spans if s.trace_id == args.trace]
    try:
        write_chrome_spans(args.out, spans, meta={"source": args.spans or "debugz"})
    except OSError as exc:
        return _fail(str(exc))
    n = len(spans_to_chrome(spans)["traceEvents"])
    _LOG.info("%d spans (%d trace events) -> %s", len(spans), n, args.out)
    print(f"{len(spans)} spans -> {args.out} (open in chrome://tracing)")
    return 0


def _cmd_obs_tail(args: argparse.Namespace) -> int:
    import json as json_mod

    from repro.obs import Span

    def emit(line: str) -> None:
        line = line.strip()
        if not line:
            return
        try:
            s = Span.from_dict(json_mod.loads(line))
        except (ValueError, KeyError, TypeError):
            return
        attrs = _span_attrs_str(s.attrs)
        print(
            f"{s.start_unix:.6f} {s.trace_id} {s.name:<28}"
            f"{s.elapsed_s * 1e3:10.3f} ms  pid={s.pid}"
            + (f"  {attrs}" if attrs else "")
        )

    try:
        fh = open(args.spans)
    except OSError as exc:
        return _fail(str(exc))
    with fh:
        lines = fh.readlines()
        for line in lines[-args.last :] if args.last else lines:
            emit(line)
        if not args.follow:
            return 0
        try:
            while True:
                line = fh.readline()
                if line:
                    emit(line)
                else:
                    time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


# -- parser -------------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction harness for 'Computation Mapping for Multi-Level "
            "Storage Cache Hierarchies' (HPDC 2010)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )

    log_parent = argparse.ArgumentParser(add_help=False)
    log_parent.add_argument(
        "--log-level",
        default="info",
        choices=("debug", "info", "warning", "error"),
        help="logging verbosity on stderr (default: info)",
    )
    log_parent.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="shorthand for --log-level debug",
    )

    scale_parent = argparse.ArgumentParser(add_help=False)
    scale_parent.add_argument(
        "--scale",
        type=int,
        default=0,
        help="run at a reduced topology (e.g. 4 => 16 clients); 0 = default",
    )

    telemetry_parent = argparse.ArgumentParser(add_help=False)
    telemetry_parent.add_argument(
        "--telemetry",
        default="",
        metavar="PATH",
        help="collect metrics/phase timings and write a JSON run manifest here",
    )
    telemetry_parent.add_argument(
        "--trace",
        default="",
        metavar="PATH",
        dest="trace",
        help="trace the run as one span tree and write span JSONL here "
        "(view with 'repro obs')",
    )

    engine_parent = argparse.ArgumentParser(add_help=False)
    engine_parent.add_argument(
        "--engine",
        default="",
        choices=("reference", "fast"),
        help="simulation engine: 'fast' (vectorized, default) or "
        "'reference' (scalar oracle)",
    )

    exec_parent = argparse.ArgumentParser(add_help=False)
    exec_parent.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="run simulations on a process pool of N workers (0/1 = serial)",
    )
    exec_parent.add_argument(
        "--cache",
        default="",
        metavar="DIR",
        help="content-addressed result store directory (reused across runs)",
    )
    exec_parent.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="LRU-evict the store past this size after each write "
        "(default: $REPRO_CACHE_MAX_BYTES, else unbounded)",
    )

    experiment_parents = [
        log_parent,
        scale_parent,
        telemetry_parent,
        exec_parent,
        engine_parent,
    ]

    sub = parser.add_subparsers(dest="command", required=True, metavar="command")

    for name in EXPERIMENTS:
        p = sub.add_parser(
            name, parents=experiment_parents, help=f"regenerate {name}"
        )
        p.set_defaults(func=_cmd_experiment, experiment=name)

    p = sub.add_parser(
        "discussion",
        parents=experiment_parents,
        help="the §5.4/§6 discussion analyses",
    )
    p.set_defaults(func=_cmd_discussion)

    p = sub.add_parser(
        "all", parents=experiment_parents, help="every experiment, in paper order"
    )
    p.set_defaults(func=_cmd_all)

    p = sub.add_parser(
        "explain",
        parents=experiment_parents,
        help="miss-source attribution for one workload",
    )
    p.add_argument(
        "--workload", default="hf", help="workload to analyse (default: hf)"
    )
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser(
        "suite",
        parents=experiment_parents,
        help="raw per-(workload, version) metrics",
    )
    p.add_argument(
        "--json", default="", help="also dump raw results to this JSON file"
    )
    p.set_defaults(func=_cmd_suite)

    p = sub.add_parser(
        "serve",
        parents=[log_parent, scale_parent, exec_parent, engine_parent],
        help="long-lived mapping service (HTTP, coalescing, backpressure)",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port", type=int, default=8080, help="bind port (0 = ephemeral)"
    )
    p.add_argument(
        "--max-queue",
        type=int,
        default=64,
        metavar="N",
        help="admitted experiment requests before 429 backpressure (default: 64)",
    )
    p.add_argument(
        "--max-batch",
        type=int,
        default=8,
        metavar="N",
        help="micro-batch size fed to the backend executor (default: 8)",
    )
    p.add_argument(
        "--batch-wait-ms",
        type=float,
        default=5.0,
        metavar="MS",
        help="max wait to fill a micro-batch (default: 5 ms)",
    )
    p.add_argument(
        "--request-timeout",
        type=float,
        default=300.0,
        metavar="S",
        help="per-request timeout in seconds (default: 300)",
    )
    p.add_argument(
        "--trace",
        action="store_true",
        help="enable span tracing (per-request trees on /debugz; off by default)",
    )
    p.add_argument(
        "--span-log",
        default="",
        metavar="PATH",
        help="also append finished spans as JSONL here (implies --trace)",
    )
    p.add_argument(
        "--span-ring",
        type=int,
        default=4096,
        metavar="N",
        help="in-memory span ring capacity (default: 4096)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "request",
        parents=[log_parent, scale_parent],
        help="send one experiment request to a running mapping service",
    )
    p.add_argument(
        "--url", default="http://127.0.0.1:8080", help="service base URL"
    )
    p.add_argument("--workload", default="hf", help="suite workload (default: hf)")
    p.add_argument(
        "--mapper",
        default="inter+sched",
        choices=VERSIONS,
        help="mapping version to request (default: inter+sched)",
    )
    p.add_argument(
        "--scenario",
        default="",
        help="request a registered scenario instead of --workload/--mapper",
    )
    p.add_argument(
        "--timeout", type=float, default=600.0, help="client timeout in seconds"
    )
    p.add_argument(
        "--json", action="store_true", help="print the raw response document"
    )
    p.add_argument(
        "--request-id",
        default="",
        metavar="ID",
        help="supply the correlation id instead of letting the server generate one",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="on 429/503 honor Retry-After and retry up to N times with "
        "capped jittered exponential backoff (default: 0 = fail fast)",
    )
    p.set_defaults(func=_cmd_request)

    shard = sub.add_parser(
        "shard",
        help="consistent-hash sharded serving tier (router + N workers)",
    )
    shsub = shard.add_subparsers(
        dest="shard_command", required=True, metavar="action"
    )

    p = shsub.add_parser(
        "serve",
        parents=[log_parent, scale_parent, exec_parent, engine_parent],
        help="run a local cluster: N shard workers behind one router",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=3,
        metavar="N",
        help="number of shard workers to spawn (default: 3)",
    )
    p.add_argument("--host", default="127.0.0.1", help="router bind address")
    p.add_argument(
        "--port", type=int, default=8080, help="router bind port (0 = ephemeral)"
    )
    p.add_argument(
        "--max-queue",
        type=int,
        default=64,
        metavar="N",
        help="per-worker admitted requests before 429 (default: 64)",
    )
    p.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        metavar="N",
        help="router-side in-flight requests per shard before 429 (default: 64)",
    )
    p.add_argument(
        "--max-batch",
        type=int,
        default=8,
        metavar="N",
        help="per-worker micro-batch size (default: 8)",
    )
    p.add_argument(
        "--batch-wait-ms",
        type=float,
        default=5.0,
        metavar="MS",
        help="per-worker max wait to fill a micro-batch (default: 5 ms)",
    )
    p.add_argument(
        "--request-timeout",
        type=float,
        default=300.0,
        metavar="S",
        help="per-request timeout in seconds (default: 300)",
    )
    p.add_argument(
        "--trace",
        action="store_true",
        help="enable router span tracing (per-request trees on /debugz)",
    )
    p.add_argument(
        "--span-log",
        default="",
        metavar="PATH",
        help="also append finished router spans as JSONL here (implies --trace)",
    )
    p.add_argument(
        "--span-ring",
        type=int,
        default=4096,
        metavar="N",
        help="in-memory span ring capacity (default: 4096)",
    )
    p.set_defaults(func=_cmd_shard_serve)

    p = shsub.add_parser(
        "worker",
        parents=[log_parent, scale_parent, engine_parent],
        help="run one shard worker over its store partition (internal: "
        "spawned by 'shard serve')",
    )
    p.add_argument("--shard-id", required=True, help="ring member id (shard-<n>)")
    p.add_argument(
        "--root", required=True, metavar="DIR", help="cluster partition root"
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port", type=int, default=0, help="bind port (0 = ephemeral)"
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="process-pool workers for this shard (0/1 = serial)",
    )
    p.add_argument("--max-queue", type=int, default=64, metavar="N")
    p.add_argument("--max-batch", type=int, default=8, metavar="N")
    p.add_argument("--batch-wait-ms", type=float, default=5.0, metavar="MS")
    p.add_argument("--request-timeout", type=float, default=300.0, metavar="S")
    p.add_argument("--cache-max-bytes", type=int, default=None, metavar="N")
    p.set_defaults(func=_cmd_shard_worker)

    p = shsub.add_parser(
        "status",
        parents=[log_parent],
        help="cluster-wide status from a running router",
    )
    p.add_argument(
        "--url", default="http://127.0.0.1:8080", help="router base URL"
    )
    p.add_argument(
        "--timeout", type=float, default=30.0, help="client timeout in seconds"
    )
    p.add_argument(
        "--json", action="store_true", help="print the raw status document"
    )
    p.set_defaults(func=_cmd_shard_status)

    p = shsub.add_parser(
        "drain",
        parents=[log_parent],
        help="gracefully remove one shard: park, stop, rebalance, reroute",
    )
    p.add_argument("--shard", required=True, help="member to drain (shard-<n>)")
    p.add_argument(
        "--url", default="http://127.0.0.1:8080", help="router base URL"
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="client timeout in seconds (drain waits out in-flight work)",
    )
    p.add_argument(
        "--json", action="store_true", help="print the raw drain document"
    )
    p.set_defaults(func=_cmd_shard_drain)

    cache = sub.add_parser(
        "cache", help="inspect and maintain the on-disk result store"
    )
    csub = cache.add_subparsers(
        dest="cache_command", required=True, metavar="action"
    )
    cache_parent = argparse.ArgumentParser(add_help=False)
    cache_parent.add_argument(
        "--cache",
        default="",
        metavar="DIR",
        help="store directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    cache_parent.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="treat the store as capped at this size "
        "(default: $REPRO_CACHE_MAX_BYTES)",
    )

    p = csub.add_parser(
        "stats",
        parents=[log_parent, cache_parent],
        help="entry counts and on-disk size",
    )
    p.set_defaults(func=_cmd_cache_stats)

    p = csub.add_parser(
        "gc",
        parents=[log_parent, cache_parent],
        help="evict least-recently-used entries down to a byte budget",
    )
    p.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="evict least-recently-used entries until the store fits this "
        "size (default: --cache-max-bytes / $REPRO_CACHE_MAX_BYTES)",
    )
    p.set_defaults(func=_cmd_cache_gc)

    p = csub.add_parser(
        "clear",
        parents=[log_parent, cache_parent],
        help="remove every store entry",
    )
    p.set_defaults(func=_cmd_cache_clear)

    metrics = sub.add_parser(
        "metrics", help="inspect, export, diff and validate run manifests"
    )
    msub = metrics.add_subparsers(
        dest="metrics_command", required=True, metavar="action"
    )

    p = msub.add_parser(
        "show", parents=[log_parent], help="summarise a run manifest"
    )
    p.add_argument("manifest", help="manifest path written by --telemetry")
    p.set_defaults(func=_cmd_metrics_show)

    p = msub.add_parser(
        "export",
        parents=[log_parent],
        help="export a manifest as Prometheus text exposition",
    )
    p.add_argument("manifest", help="manifest path written by --telemetry")
    p.add_argument(
        "-o", "--out", default="-", help="output path ('-' for stdout, default)"
    )
    p.set_defaults(func=_cmd_metrics_export)

    p = msub.add_parser(
        "diff", parents=[log_parent], help="compare two run manifests"
    )
    p.add_argument("manifest_a", help="baseline manifest")
    p.add_argument("manifest_b", help="comparison manifest")
    p.set_defaults(func=_cmd_metrics_diff)

    p = msub.add_parser(
        "validate", parents=[log_parent], help="schema-check a run manifest"
    )
    p.add_argument("manifest", help="manifest path to validate")
    p.set_defaults(func=_cmd_metrics_validate)

    trace = sub.add_parser("trace", help="event tracing, record/replay, mapping diffs")
    tsub = trace.add_subparsers(dest="trace_command", required=True, metavar="action")

    p = tsub.add_parser(
        "record",
        parents=[log_parent, scale_parent],
        help="record a workload artifact",
    )
    p.add_argument("--workload", default="hf", help="suite workload (default: hf)")
    p.add_argument(
        "--mapper",
        default="inter+sched",
        choices=VERSIONS,
        help="mapping version to record (default: inter+sched)",
    )
    p.add_argument("-o", "--out", required=True, help="artifact output path (.npz)")
    p.add_argument(
        "--events", default="", help="also write the event trace to this JSONL file"
    )
    p.set_defaults(func=_cmd_trace_record)

    p = tsub.add_parser(
        "export", parents=[log_parent], help="export an artifact's event trace"
    )
    p.add_argument("artifact", help="recorded artifact path")
    p.add_argument(
        "--format",
        default="chrome",
        choices=("chrome", "jsonl"),
        help="chrome://tracing JSON (default) or raw JSONL events",
    )
    p.add_argument("-o", "--out", required=True, help="output path")
    p.set_defaults(func=_cmd_trace_export)

    p = tsub.add_parser(
        "replay",
        parents=[log_parent, engine_parent],
        help="re-simulate an artifact (optionally under what-if overrides)",
    )
    p.add_argument("artifact", help="recorded artifact path")
    p.add_argument(
        "--prefetch-degree", type=int, default=None, help="override prefetch degree"
    )
    p.add_argument(
        "--cache-elems",
        default="",
        help="override per-node cache sizes, e.g. 2048,3072,12288",
    )
    p.add_argument("--policy", default="", help="override replacement policy")
    p.set_defaults(func=_cmd_trace_replay)

    p = tsub.add_parser(
        "diff",
        parents=[log_parent, scale_parent],
        help="diff two traces of one workload",
    )
    p.add_argument(
        "artifacts", nargs="*", help="two recorded artifact paths (same workload)"
    )
    p.add_argument(
        "--workload", default="", help="record-and-diff mode: suite workload"
    )
    p.add_argument(
        "-a", "--version-a", default="original", choices=VERSIONS,
        help="baseline mapping version (default: original)",
    )
    p.add_argument(
        "-b", "--version-b", default="inter+sched", choices=VERSIONS,
        help="comparison mapping version (default: inter+sched)",
    )
    p.add_argument(
        "--top", type=int, default=10, help="top-N chunk movers to report"
    )
    p.set_defaults(func=_cmd_trace_diff)

    obs = sub.add_parser(
        "obs", help="span traces: request trees, SLO report, Chrome export"
    )
    osub = obs.add_subparsers(dest="obs_command", required=True, metavar="action")
    spans_parent = argparse.ArgumentParser(add_help=False)
    spans_parent.add_argument(
        "spans",
        nargs="?",
        default="",
        help="span JSONL file (from --trace / --span-log); or use --url",
    )
    spans_parent.add_argument(
        "--url",
        default="",
        metavar="URL",
        help="read spans from a running server's /debugz instead of a file",
    )

    p = osub.add_parser(
        "spans",
        parents=[log_parent, spans_parent],
        help="render per-request span trees",
    )
    p.add_argument(
        "--trace", default="", metavar="ID", help="only this request id's tree"
    )
    p.add_argument(
        "--last", type=int, default=0, metavar="N", help="only the last N trees"
    )
    p.set_defaults(func=_cmd_obs_spans)

    p = osub.add_parser(
        "slo",
        parents=[log_parent, spans_parent],
        help="per-stage p50/p95/p99 latency report",
    )
    p.add_argument(
        "--top", type=int, default=5, metavar="N", help="slowest roots to list"
    )
    p.add_argument(
        "--json", action="store_true", help="print the report document as JSON"
    )
    p.set_defaults(func=_cmd_obs_slo)

    p = osub.add_parser(
        "export",
        parents=[log_parent, spans_parent],
        help="export spans as chrome://tracing JSON",
    )
    p.add_argument(
        "--trace", default="", metavar="ID", help="only this request id's spans"
    )
    p.add_argument("-o", "--out", required=True, help="Chrome-trace output path")
    p.set_defaults(func=_cmd_obs_export)

    p = osub.add_parser(
        "tail", parents=[log_parent], help="print spans from a span log as lines"
    )
    p.add_argument("spans", help="span JSONL log (e.g. serve --span-log)")
    p.add_argument(
        "-f", "--follow", action="store_true", help="keep watching for new spans"
    )
    p.add_argument(
        "--last", type=int, default=20, metavar="N",
        help="existing spans to print first (default: 20; 0 = all)",
    )
    p.add_argument(
        "--interval", type=float, default=0.5, metavar="S",
        help="poll interval when following (default: 0.5s)",
    )
    p.set_defaults(func=_cmd_obs_tail)

    scenario = sub.add_parser(
        "scenario", help="declarative scenarios: registry, generators, traces"
    )
    ssub = scenario.add_subparsers(
        dest="scenario_command", required=True, metavar="action"
    )

    p = ssub.add_parser(
        "list", parents=[log_parent], help="list registered scenarios"
    )
    p.set_defaults(func=_cmd_scenario_list)

    p = ssub.add_parser(
        "show",
        parents=[log_parent],
        help="print one scenario's spec document as JSON",
    )
    p.add_argument("scenario", help="registered name or spec file (.json/.yaml)")
    p.set_defaults(func=_cmd_scenario_show)

    p = ssub.add_parser(
        "validate",
        parents=[log_parent],
        help="validate scenarios (all built-ins when none is named)",
    )
    p.add_argument(
        "scenario",
        nargs="?",
        default="",
        help="registered name or spec file; default: every registered scenario",
    )
    p.set_defaults(func=_cmd_scenario_validate)

    p = ssub.add_parser(
        "run",
        parents=[
            log_parent,
            scale_parent,
            telemetry_parent,
            exec_parent,
            engine_parent,
        ],
        help="execute one scenario through the exec runtime",
    )
    p.add_argument("scenario", help="registered name or spec file (.json/.yaml)")
    p.add_argument(
        "--mapper",
        default="",
        choices=("",) + VERSIONS,
        help="mapper version override (workload-kind scenarios only)",
    )
    p.add_argument(
        "--policies",
        default="",
        metavar="L1,L2,L3",
        help="per-level replacement policies, leaf first (e.g. lru,rrip,arc)",
    )
    p.set_defaults(func=_cmd_scenario_run)

    campaign = sub.add_parser(
        "campaign",
        help="resumable experiment campaigns: matrix specs, manifests, reports",
    )
    camp_sub = campaign.add_subparsers(
        dest="campaign_command", required=True, metavar="action"
    )

    p = camp_sub.add_parser(
        "run",
        parents=[
            log_parent,
            scale_parent,
            telemetry_parent,
            exec_parent,
            engine_parent,
        ],
        help="execute a campaign spec; write manifest + comparison report",
    )
    p.add_argument("spec", help="campaign spec file (.json/.yaml)")
    p.add_argument(
        "-o",
        "--out",
        required=True,
        metavar="DIR",
        help="output directory for manifest.json, report.json, report.md",
    )
    p.add_argument(
        "--chunk-size",
        type=int,
        default=16,
        metavar="N",
        help="cells per manifest checkpoint (default: 16)",
    )
    p.set_defaults(func=_cmd_campaign_run)

    p = camp_sub.add_parser(
        "status",
        parents=[log_parent],
        help="summarise a (possibly still-running) campaign manifest",
    )
    p.add_argument("manifest", help="manifest.json path or its directory")
    p.set_defaults(func=_cmd_campaign_status)

    p = camp_sub.add_parser(
        "report",
        parents=[log_parent],
        help="regenerate the comparison report from a manifest",
    )
    p.add_argument("manifest", help="manifest.json path or its directory")
    p.add_argument(
        "--json", action="store_true", help="print the report document as JSON"
    )
    p.set_defaults(func=_cmd_campaign_report)

    p = camp_sub.add_parser(
        "diff",
        parents=[log_parent],
        help="compare two campaign manifests cell by cell",
    )
    p.add_argument("manifest_a", help="baseline manifest.json (or directory)")
    p.add_argument("manifest_b", help="comparison manifest.json (or directory)")
    p.set_defaults(func=_cmd_campaign_diff)

    return parser


def _run_with_telemetry(args: argparse.Namespace, argv: list[str] | None) -> int:
    """Execute the command inside a live registry; write the manifest."""
    from repro.telemetry import (
        MetricsRegistry,
        build_manifest,
        declare_pipeline_metrics,
        save_manifest,
        use_registry,
    )

    registry = MetricsRegistry()
    declare_pipeline_metrics(registry)
    args._reports = []
    with use_registry(registry):
        status = _invoke(args)
    if status != 0:
        return status
    config = _config_from(args) or config_mod.DEFAULT_CONFIG
    store = getattr(args, "_store", None)
    meta = {"result_store": store.stats().as_dict()} if store is not None else None
    doc = build_manifest(
        registry,
        config=config,
        command=args.command,
        argv=list(argv) if argv is not None else sys.argv[1:],
        reports=args._reports,
        meta=meta,
    )
    try:
        save_manifest(args.telemetry, doc)
    except OSError as exc:
        return _fail(str(exc))
    _LOG.info("run manifest -> %s", args.telemetry)
    return status


def _run_traced(args: argparse.Namespace, run) -> int:
    """Wrap a command in one span tree when ``--trace PATH`` was given.

    The whole invocation becomes a single trace rooted at
    ``cli.<command>`` — the CLI analogue of a serve request id — with
    the profiler's phases (and any pool workers' repatriated spans)
    underneath; the finished spans land at PATH as JSONL for
    ``repro obs``.  (serve's ``--trace`` is a boolean handled by the
    server itself.)
    """
    trace_path = getattr(args, "trace", "")
    if not trace_path or not isinstance(trace_path, str):
        return run()
    from repro.obs import Tracer, new_request_id, span, use_tracer, write_spans_jsonl

    request_id = new_request_id()
    tracer = Tracer(capacity=65536)
    with use_tracer(tracer):
        with span(f"cli.{args.command}", trace_id=request_id):
            status = run()
    try:
        n = write_spans_jsonl(trace_path, tracer.spans())
    except OSError as exc:
        return _fail(str(exc))
    _LOG.info("%d spans for request %s -> %s", n, request_id, trace_path)
    print(f"  trace: {request_id} ({n} spans) -> {trace_path}")
    return status


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    level = "debug" if getattr(args, "verbose", False) else getattr(
        args, "log_level", "info"
    )
    configure_logging(level)
    start = time.perf_counter()
    try:
        if getattr(args, "telemetry", ""):
            status = _run_traced(args, lambda: _run_with_telemetry(args, argv))
        else:
            status = _run_traced(args, lambda: _invoke(args))
    except BrokenPipeError:
        # stdout closed early (e.g. piped into head): exit quietly like a
        # well-behaved filter.  Point stdout at devnull so the interpreter's
        # shutdown flush doesn't raise a second time.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    _LOG.info("[%.1fs]", time.perf_counter() - start)
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
