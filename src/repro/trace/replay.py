"""Trace record/replay: workload artifacts that skip the mapping stage.

Mapping (chunking, affinity clustering, Fig. 15 scheduling) dominates
experiment cost; the simulation itself is cheap.  A
:class:`TraceArtifact` freezes the mapping stage's output — per-client
request streams, write masks, iteration counts, the config fingerprint —
into a versioned single-file ``.npz`` artifact, and :func:`replay`
re-simulates it against any hierarchy/latency/prefetch configuration.
That decouples the expensive mapping from cheap re-simulation, enabling
fast what-if sweeps over cache sizes and policies (the trace-driven
methodology of the related graph-layout work in PAPERS.md).

Round-trip guarantee: replaying an artifact under its recorded config
reproduces the direct :func:`repro.simulator.runner.run_experiment`
result exactly — both paths share :func:`prepare_experiment` and the
engine resets all state up front.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field, replace

import numpy as np

from repro.experiments.config import DEFAULT_CONFIG, SystemConfig
from repro.simulator.engine import LatencyModel
from repro.simulator.engines import resolve_engine
from repro.simulator.metrics import SimulationResult
from repro.simulator.runner import prepare_experiment
from repro.storage.filesystem import ParallelFileSystem
from repro.util.fingerprint import config_fingerprint, config_from_fingerprint
from repro.workloads.suite import get_workload

__all__ = [
    "TRACE_ARTIFACT_VERSION",
    "TraceArtifact",
    "config_fingerprint",
    "config_from_fingerprint",
    "record",
    "save_artifact",
    "load_artifact",
    "replay",
    "with_cache_overrides",
]

#: Bump when the artifact layout changes; readers reject newer files.
TRACE_ARTIFACT_VERSION = 1

_STREAM_PREFIX = "stream_"
_MASK_PREFIX = "mask_"


@dataclass
class TraceArtifact:
    """A recorded workload: simulator inputs with the mapping stage done."""

    streams: dict[int, np.ndarray]
    write_masks: dict[int, np.ndarray] | None
    iterations_per_client: dict[int, int]
    num_data_chunks: int
    prefetch_degree: int
    config: SystemConfig
    workload: str = ""
    mapper_version: str = ""
    sync_counts: dict[int, int] | None = None
    format_version: int = field(default=TRACE_ARTIFACT_VERSION)

    @property
    def num_clients(self) -> int:
        return len(self.streams)

    def total_requests(self) -> int:
        return sum(len(s) for s in self.streams.values())

    def fingerprint(self) -> dict:
        """The recorded configuration as a JSON-safe dict."""
        return _config_to_dict(self.config)

    def __repr__(self) -> str:
        return (
            f"TraceArtifact({self.workload}/{self.mapper_version}, "
            f"clients={self.num_clients}, requests={self.total_requests()}, "
            f"format=v{self.format_version})"
        )


def record(
    workload_name: str,
    config: SystemConfig | None = None,
    version: str = "inter+sched",
    sync_counts: dict[int, int] | None = None,
) -> TraceArtifact:
    """Run the mapping stage once and freeze the simulator inputs."""
    config = config or DEFAULT_CONFIG
    workload = get_workload(workload_name)
    prep = prepare_experiment(workload, config, version)
    return TraceArtifact(
        streams=prep.streams,
        write_masks=prep.write_masks,
        iterations_per_client=prep.iterations_per_client,
        num_data_chunks=prep.num_data_chunks,
        prefetch_degree=config.prefetch_degree,
        config=config,
        workload=prep.workload,
        mapper_version=prep.version,
        sync_counts=sync_counts,
    )


# -- (de)serialisation --------------------------------------------------------------


# The canonical (de)serialisation lives in repro.util.fingerprint; these
# re-exports keep the trace module's historical import surface working.
_config_to_dict = config_fingerprint
_config_from_dict = config_from_fingerprint


def save_artifact(path: str | pathlib.Path, artifact: TraceArtifact) -> None:
    """Write one artifact as a compressed ``.npz`` (arrays + JSON metadata)."""
    meta = {
        "record": "repro-trace-artifact",
        "format_version": artifact.format_version,
        "workload": artifact.workload,
        "mapper_version": artifact.mapper_version,
        "num_data_chunks": artifact.num_data_chunks,
        "prefetch_degree": artifact.prefetch_degree,
        "iterations_per_client": {
            str(c): int(n) for c, n in artifact.iterations_per_client.items()
        },
        "sync_counts": (
            {str(c): int(n) for c, n in artifact.sync_counts.items()}
            if artifact.sync_counts is not None
            else None
        ),
        "config": artifact.fingerprint(),
    }
    arrays: dict[str, np.ndarray] = {
        f"{_STREAM_PREFIX}{c}": np.asarray(s, dtype=np.int64)
        for c, s in artifact.streams.items()
    }
    if artifact.write_masks is not None:
        for c, m in artifact.write_masks.items():
            arrays[f"{_MASK_PREFIX}{c}"] = np.asarray(m, dtype=bool)
    with open(path, "wb") as f:
        np.savez_compressed(f, meta=np.array(json.dumps(meta)), **arrays)


def load_artifact(path: str | pathlib.Path) -> TraceArtifact:
    """Load an artifact written by :func:`save_artifact` (version-checked)."""
    with np.load(path, allow_pickle=False) as data:
        if "meta" not in data.files:
            raise ValueError(f"{path}: not a repro trace artifact (no metadata)")
        meta = json.loads(str(data["meta"]))
        if meta.get("record") != "repro-trace-artifact":
            raise ValueError(f"{path}: not a repro trace artifact")
        version = meta.get("format_version")
        if not isinstance(version, int) or version > TRACE_ARTIFACT_VERSION:
            raise ValueError(
                f"{path}: artifact format v{version} is newer than this "
                f"build's v{TRACE_ARTIFACT_VERSION}"
            )
        streams: dict[int, np.ndarray] = {}
        masks: dict[int, np.ndarray] = {}
        for key in data.files:
            if key.startswith(_STREAM_PREFIX):
                streams[int(key[len(_STREAM_PREFIX) :])] = data[key]
            elif key.startswith(_MASK_PREFIX):
                masks[int(key[len(_MASK_PREFIX) :])] = data[key]
    sync = meta.get("sync_counts")
    return TraceArtifact(
        streams=streams,
        write_masks=masks or None,
        iterations_per_client={
            int(c): n for c, n in meta["iterations_per_client"].items()
        },
        num_data_chunks=meta["num_data_chunks"],
        prefetch_degree=meta["prefetch_degree"],
        config=_config_from_dict(meta["config"]),
        workload=meta["workload"],
        mapper_version=meta["mapper_version"],
        sync_counts={int(c): n for c, n in sync.items()} if sync else None,
        format_version=version,
    )


# -- replay -------------------------------------------------------------------------


def replay(
    artifact: TraceArtifact | str | pathlib.Path,
    *,
    config: SystemConfig | None = None,
    hierarchy=None,
    filesystem: ParallelFileSystem | None = None,
    latency: LatencyModel | None = None,
    prefetch_degree: int | None = None,
    recorder=None,
    engine: str | None = None,
) -> SimulationResult:
    """Re-simulate a recorded workload without re-running the mapping.

    With no overrides the recorded configuration is reproduced exactly.
    Pass ``config`` (or individual ``hierarchy`` / ``filesystem`` /
    ``latency`` / ``prefetch_degree`` overrides) for what-if sweeps over
    cache sizes, policies, latencies or prefetching — the recorded
    streams stay fixed, only the machine under them changes.  ``engine``
    selects the simulation engine (``reference``/``fast``); ``None``
    uses the process default.
    """
    if not isinstance(artifact, TraceArtifact):
        artifact = load_artifact(artifact)
    cfg = config or artifact.config
    if hierarchy is None:
        hierarchy = cfg.build_hierarchy()
    if filesystem is None:
        filesystem = ParallelFileSystem(
            cfg.num_storage_nodes,
            chunk_bytes=cfg.chunk_elems * 1024,
            disk_params=cfg.disk,
        )
    if latency is None:
        latency = cfg.latency
    if prefetch_degree is None:
        prefetch_degree = (
            cfg.prefetch_degree if config is not None else artifact.prefetch_degree
        )
    return resolve_engine(engine)(
        artifact.streams,
        hierarchy,
        filesystem,
        latency=latency,
        sync_counts=artifact.sync_counts,
        iterations_per_client=artifact.iterations_per_client,
        write_masks=artifact.write_masks,
        prefetch_degree=prefetch_degree,
        num_data_chunks=artifact.num_data_chunks,
        recorder=recorder,
    )


def with_cache_overrides(
    artifact: TraceArtifact,
    cache_elems: tuple[int, int, int] | None = None,
    policy: str | None = None,
) -> SystemConfig:
    """The artifact's config with what-if cache overrides applied."""
    cfg = artifact.config
    if cache_elems is not None:
        cfg = replace(cfg, cache_elems=tuple(cache_elems))
    if policy is not None:
        cfg = replace(cfg, policy=policy)
    return cfg
