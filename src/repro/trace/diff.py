"""Mapping diffs: explain why one mapping beats another.

Aligns two event traces of the *same workload* under different mappers
and reports, in the vocabulary of the paper's §5.2 discussion:

* **per-level hit deltas** — how many requests moved between L1/L2/L3
  hits and full misses (the aggregate Figs. 8-9 argue about);
* **first divergence** — the first global step at which the two runs'
  (client, chunk, outcome) triples differ;
* **top chunk movers** — the chunks whose serving level shifted most,
  i.e. the concrete data whose placement the mapping changed.

The usual entry point is :func:`diff_artifacts`, which replays two
recorded artifacts (:mod:`repro.trace.replay`) with memory recorders and
diffs the resulting traces.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Sequence

from repro.trace.events import Access, TraceEvent, hit_level_label
from repro.trace.recorder import MemoryRecorder
from repro.trace.replay import TraceArtifact, replay
from repro.util.tables import format_table

__all__ = ["ChunkMove", "TraceDiff", "diff_traces", "diff_artifacts"]


@dataclass(frozen=True)
class ChunkMove:
    """One chunk whose serving-level distribution changed between traces."""

    chunk: int
    moved: int  # total |count delta| across levels (incl. miss bucket)
    dominant_a: str  # level serving most of the chunk's accesses in trace a
    dominant_b: str
    counts_a: dict[str, int] = field(default_factory=dict)
    counts_b: dict[str, int] = field(default_factory=dict)


@dataclass
class TraceDiff:
    """The aligned comparison of two traces of one workload."""

    label_a: str
    label_b: str
    level_order: list[str]  # level names leaf-first, then "miss"
    hits_a: dict[str, int]
    hits_b: dict[str, int]
    accesses_a: int
    accesses_b: int
    first_divergence: int | None
    divergence_a: Access | None
    divergence_b: Access | None
    movers: list[ChunkMove]

    @property
    def hit_deltas(self) -> dict[str, int]:
        """Per-level served-request deltas, ``b - a`` (negative = fewer)."""
        return {
            lvl: self.hits_b.get(lvl, 0) - self.hits_a.get(lvl, 0)
            for lvl in self.level_order
        }

    @property
    def is_empty(self) -> bool:
        """True when the two traces have identical per-level behaviour."""
        return all(d == 0 for d in self.hit_deltas.values()) and not self.movers

    def render(self) -> str:
        rows = []
        for lvl in self.level_order:
            a, b = self.hits_a.get(lvl, 0), self.hits_b.get(lvl, 0)
            rows.append([lvl, a, b, f"{b - a:+d}"])
        rows.append(["requests", self.accesses_a, self.accesses_b,
                     f"{self.accesses_b - self.accesses_a:+d}"])
        out = format_table(
            ["served by", self.label_a, self.label_b, "delta"],
            rows,
            title=f"Trace diff: {self.label_a} vs {self.label_b}",
        )
        if self.first_divergence is None:
            out += "\n  traces identical step for step"
        else:
            out += f"\n  first divergence at step {self.first_divergence}"
            if self.divergence_a and self.divergence_b:
                da, db = self.divergence_a, self.divergence_b
                out += (
                    f": {self.label_a} -> client {da.client} chunk {da.chunk} "
                    f"({hit_level_label(da.hit_level, self.level_order)}), "
                    f"{self.label_b} -> client {db.client} chunk {db.chunk} "
                    f"({hit_level_label(db.hit_level, self.level_order)})"
                )
            elif self.divergence_a or self.divergence_b:
                shorter = self.label_b if self.divergence_a else self.label_a
                out += f" ({shorter} ends first)"
        if self.movers:
            mover_rows = [
                [m.chunk, m.dominant_a, m.dominant_b, m.moved] for m in self.movers
            ]
            out += "\n" + format_table(
                ["chunk", f"mostly in ({self.label_a})",
                 f"mostly in ({self.label_b})", "accesses moved"],
                mover_rows,
                title="Top chunks whose placement changed",
            )
        return out

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def _level_counts(
    accesses: list[Access], level_names: Sequence[str]
) -> tuple[dict[str, int], dict[int, Counter]]:
    """Aggregate (per-level totals, per-chunk per-level counters)."""
    totals: Counter[str] = Counter()
    per_chunk: dict[int, Counter] = defaultdict(Counter)
    for e in accesses:
        label = hit_level_label(e.hit_level, level_names)
        totals[label] += 1
        per_chunk[e.chunk][label] += 1
    return dict(totals), per_chunk


def diff_traces(
    events_a: Sequence[TraceEvent],
    events_b: Sequence[TraceEvent],
    level_names: Sequence[str] = ("L1", "L2", "L3"),
    top_n: int = 10,
    label_a: str = "a",
    label_b: str = "b",
) -> TraceDiff:
    """Compare two event traces of the same workload."""
    acc_a = [e for e in events_a if isinstance(e, Access)]
    acc_b = [e for e in events_b if isinstance(e, Access)]

    totals_a, chunks_a = _level_counts(acc_a, level_names)
    totals_b, chunks_b = _level_counts(acc_b, level_names)

    # First step where the (client, chunk, outcome) triples differ.
    first_div: int | None = None
    div_a: Access | None = None
    div_b: Access | None = None
    for i, (ea, eb) in enumerate(zip(acc_a, acc_b)):
        if (ea.client, ea.chunk, ea.hit_level) != (eb.client, eb.chunk, eb.hit_level):
            first_div, div_a, div_b = i, ea, eb
            break
    else:
        if len(acc_a) != len(acc_b):
            first_div = min(len(acc_a), len(acc_b))
            div_a = acc_a[first_div] if first_div < len(acc_a) else None
            div_b = acc_b[first_div] if first_div < len(acc_b) else None

    level_order = list(level_names) + ["miss"]
    movers: list[ChunkMove] = []
    for chunk in sorted(set(chunks_a) | set(chunks_b)):
        ca, cb = chunks_a.get(chunk, Counter()), chunks_b.get(chunk, Counter())
        moved = sum(abs(cb.get(lvl, 0) - ca.get(lvl, 0)) for lvl in level_order)
        if moved == 0:
            continue
        movers.append(
            ChunkMove(
                chunk=chunk,
                moved=moved,
                dominant_a=max(level_order, key=lambda l: ca.get(l, 0)) if ca else "-",
                dominant_b=max(level_order, key=lambda l: cb.get(l, 0)) if cb else "-",
                counts_a=dict(ca),
                counts_b=dict(cb),
            )
        )
    movers.sort(key=lambda m: (-m.moved, m.chunk))

    return TraceDiff(
        label_a=label_a,
        label_b=label_b,
        level_order=level_order,
        hits_a=totals_a,
        hits_b=totals_b,
        accesses_a=len(acc_a),
        accesses_b=len(acc_b),
        first_divergence=first_div,
        divergence_a=div_a,
        divergence_b=div_b,
        movers=movers[:top_n],
    )


def diff_artifacts(
    artifact_a: TraceArtifact,
    artifact_b: TraceArtifact,
    top_n: int = 10,
) -> TraceDiff:
    """Replay two artifacts of the same workload and diff their traces."""
    if artifact_a.workload != artifact_b.workload:
        raise ValueError(
            f"artifacts trace different workloads: "
            f"{artifact_a.workload!r} vs {artifact_b.workload!r}"
        )
    hierarchy = artifact_a.config.build_hierarchy()
    level_names = hierarchy.level_names()
    rec_a, rec_b = MemoryRecorder(), MemoryRecorder()
    replay(artifact_a, recorder=rec_a)
    replay(artifact_b, recorder=rec_b)
    return diff_traces(
        rec_a.events,
        rec_b.events,
        level_names=level_names,
        top_n=top_n,
        label_a=artifact_a.mapper_version or "a",
        label_b=artifact_b.mapper_version or "b",
    )
