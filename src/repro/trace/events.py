"""The trace event model: what one simulation step can emit.

Six event kinds cover everything the engine does to the storage
hierarchy (the quantities Figs. 8-9 and §5.2 of the paper reason
about):

* **ACCESS** — one client request: which chunk, which level served it
  (``hit_level``, ``-1`` for a full miss) and the charged cost;
* **FILL** / **EVICT** — a chunk entering / leaving a named cache
  (inclusive fills on the miss path, victim selection by the policy);
* **PREFETCH** — a read-ahead staged into the bottom cache;
* **WRITEBACK** — a dirty victim reaching the disks;
* **SYNC** — cross-client dependence stalls charged to a client.

Events are small frozen dataclasses with ``slots`` (a large run emits
millions); every kind round-trips through a plain dict for the JSONL
exporter (:mod:`repro.trace.export`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from enum import Enum
from typing import Any, ClassVar, Sequence

__all__ = [
    "MISS_LEVEL",
    "EventKind",
    "TraceEvent",
    "Access",
    "Fill",
    "Evict",
    "Prefetch",
    "Writeback",
    "Sync",
    "event_from_dict",
    "hit_level_label",
]

#: ``hit_level`` of an :class:`Access` that fell through every cache.
MISS_LEVEL = -1


class EventKind(str, Enum):
    """Discriminator tag of one trace event."""

    ACCESS = "access"
    FILL = "fill"
    EVICT = "evict"
    PREFETCH = "prefetch"
    WRITEBACK = "writeback"
    SYNC = "sync"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """Base class; concrete kinds carry their own fields."""

    kind: ClassVar[EventKind]

    def to_dict(self) -> dict[str, Any]:
        d = asdict(self)
        d["kind"] = self.kind.value
        return d


@dataclass(frozen=True, slots=True)
class Access(TraceEvent):
    """One client request and its outcome.

    ``hit_level`` is the 0-based cache level that served the request
    (:data:`MISS_LEVEL` for a disk-served full miss); ``cost_ms`` is the
    I/O time charged to the client, including disk time on a miss.
    """

    kind: ClassVar[EventKind] = EventKind.ACCESS

    step: int
    client: int
    chunk: int
    hit_level: int
    cost_ms: float
    write: bool = False
    cold: bool = False


@dataclass(frozen=True, slots=True)
class Fill(TraceEvent):
    """A chunk filled into the cache named ``cache`` at path ``level``."""

    kind: ClassVar[EventKind] = EventKind.FILL

    step: int
    client: int
    cache: str
    level: int
    chunk: int


@dataclass(frozen=True, slots=True)
class Evict(TraceEvent):
    """A victim chosen by ``cache``'s policy to make room for a fill."""

    kind: ClassVar[EventKind] = EventKind.EVICT

    step: int
    client: int
    cache: str
    level: int
    victim: int
    dirty: bool = False


@dataclass(frozen=True, slots=True)
class Prefetch(TraceEvent):
    """A sequential read-ahead staged into the bottom cache ``cache``."""

    kind: ClassVar[EventKind] = EventKind.PREFETCH

    step: int
    client: int
    cache: str
    chunk: int


@dataclass(frozen=True, slots=True)
class Writeback(TraceEvent):
    """A dirty victim written back to disk, charged ``cost_ms``."""

    kind: ClassVar[EventKind] = EventKind.WRITEBACK

    step: int
    client: int
    chunk: int
    cost_ms: float


@dataclass(frozen=True, slots=True)
class Sync(TraceEvent):
    """Synchronisation stalls charged to one client (end-of-run)."""

    kind: ClassVar[EventKind] = EventKind.SYNC

    client: int
    count: int
    cost_ms: float


_KIND_TO_CLASS: dict[str, type[TraceEvent]] = {
    cls.kind.value: cls  # type: ignore[misc]
    for cls in (Access, Fill, Evict, Prefetch, Writeback, Sync)
}


def event_from_dict(d: dict[str, Any]) -> TraceEvent:
    """Reconstruct an event from its :meth:`TraceEvent.to_dict` form."""
    fields = dict(d)
    kind = fields.pop("kind", None)
    cls = _KIND_TO_CLASS.get(kind)
    if cls is None:
        raise ValueError(f"unknown trace event kind {kind!r}")
    return cls(**fields)


def hit_level_label(hit_level: int, level_names: Sequence[str]) -> str:
    """Human label for an :class:`Access` outcome (``"miss"`` past the end)."""
    if 0 <= hit_level < len(level_names):
        return level_names[hit_level]
    return "miss"
