"""Event-level tracing, record/replay and mapping diffs for the simulator.

The simulator aggregates per-access outcomes away; this package makes
them observable and reusable:

* :mod:`repro.trace.events` — the compact event model (ACCESS, FILL,
  EVICT, PREFETCH, WRITEBACK, SYNC);
* :mod:`repro.trace.recorder` — the recorder protocol the engine emits
  into, with a zero-overhead disabled state and an in-memory collector;
* :mod:`repro.trace.export` — JSONL event logs and Chrome-trace
  (``chrome://tracing`` / Perfetto) timelines per client;
* :mod:`repro.trace.replay` — versioned workload artifacts that freeze
  the expensive mapping stage for fast what-if re-simulation;
* :mod:`repro.trace.diff` — align two traces of one workload under
  different mappers and explain where the win comes from.

CLI: ``repro trace record | export | replay | diff``.
"""

from repro.trace.diff import ChunkMove, TraceDiff, diff_artifacts, diff_traces
from repro.trace.events import (
    MISS_LEVEL,
    Access,
    EventKind,
    Evict,
    Fill,
    Prefetch,
    Sync,
    TraceEvent,
    Writeback,
    event_from_dict,
    hit_level_label,
)
from repro.trace.export import (
    EVENTS_FORMAT_VERSION,
    read_events_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.trace.recorder import MemoryRecorder, NullRecorder, TraceRecorder
from repro.trace.replay import (
    TRACE_ARTIFACT_VERSION,
    TraceArtifact,
    config_fingerprint,
    config_from_fingerprint,
    load_artifact,
    record,
    replay,
    save_artifact,
    with_cache_overrides,
)

__all__ = [
    "MISS_LEVEL",
    "EventKind",
    "TraceEvent",
    "Access",
    "Fill",
    "Evict",
    "Prefetch",
    "Writeback",
    "Sync",
    "event_from_dict",
    "hit_level_label",
    "TraceRecorder",
    "NullRecorder",
    "MemoryRecorder",
    "EVENTS_FORMAT_VERSION",
    "write_events_jsonl",
    "read_events_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "TRACE_ARTIFACT_VERSION",
    "TraceArtifact",
    "config_fingerprint",
    "config_from_fingerprint",
    "record",
    "save_artifact",
    "load_artifact",
    "replay",
    "with_cache_overrides",
    "ChunkMove",
    "TraceDiff",
    "diff_traces",
    "diff_artifacts",
]
