"""Trace exporters: JSONL event logs and Chrome-trace timelines.

Two interchange formats:

* **JSONL** — one JSON object per event, preceded by a header record
  carrying a format version and free-form metadata; loss-free
  (``read_events_jsonl`` reconstructs the exact event objects).
* **Chrome trace format** — a ``chrome://tracing`` / Perfetto-loadable
  JSON document: one timeline row per client, one duration slice per
  access colour-banded by the level that served it, instant markers for
  prefetches and write-backs.  Load the file via "Open trace file" in
  either UI to see where in the hierarchy each client's reuse lands.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Iterable, Sequence

from repro.trace.events import (
    Access,
    Prefetch,
    TraceEvent,
    Writeback,
    event_from_dict,
    hit_level_label,
)

__all__ = [
    "EVENTS_FORMAT_VERSION",
    "write_events_jsonl",
    "read_events_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
]

#: Version of the JSONL event-log header record.
EVENTS_FORMAT_VERSION = 1

_HEADER_RECORD = "repro-trace-events"

#: Reserved Chrome-trace colour names per hit level, then the miss band.
_LEVEL_COLORS = ("good", "yellow", "bad")
_MISS_COLOR = "terrible"


def write_events_jsonl(
    path: str | pathlib.Path,
    events: Iterable[TraceEvent],
    meta: dict[str, Any] | None = None,
) -> int:
    """Write a header line plus one JSON object per event; returns the count."""
    n = 0
    with open(path, "w") as f:
        header = {
            "record": _HEADER_RECORD,
            "version": EVENTS_FORMAT_VERSION,
            "meta": dict(meta or {}),
        }
        f.write(json.dumps(header) + "\n")
        for ev in events:
            f.write(json.dumps(ev.to_dict()) + "\n")
            n += 1
    return n


def read_events_jsonl(
    path: str | pathlib.Path,
) -> tuple[dict[str, Any], list[TraceEvent]]:
    """Load ``(meta, events)`` from a file written by :func:`write_events_jsonl`."""
    with open(path) as f:
        first = f.readline()
        if not first:
            raise ValueError(f"{path}: empty trace event file")
        header = json.loads(first)
        if header.get("record") != _HEADER_RECORD:
            raise ValueError(f"{path}: not a repro trace event file")
        version = header.get("version")
        if version != EVENTS_FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported event-log version {version!r} "
                f"(this build reads v{EVENTS_FORMAT_VERSION})"
            )
        events = [event_from_dict(json.loads(line)) for line in f if line.strip()]
    return header.get("meta", {}), events


def _access_color(hit_level: int) -> str:
    if hit_level < 0:
        return _MISS_COLOR
    return _LEVEL_COLORS[min(hit_level, len(_LEVEL_COLORS) - 1)]


def to_chrome_trace(
    events: Iterable[TraceEvent],
    level_names: Sequence[str] = ("L1", "L2", "L3"),
    meta: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Render events as a Chrome-trace document (one timeline per client).

    Each client advances its own clock by the cost of its accesses (and
    write-backs), matching the engine's per-client I/O accounting; an
    access shows as a slice named after its chunk, categorised and
    colour-banded by the serving level.
    """
    trace_events: list[dict[str, Any]] = []
    clocks: dict[int, float] = {}  # client -> elapsed microseconds
    clients_seen: set[int] = set()

    for ev in events:
        if isinstance(ev, Access):
            clients_seen.add(ev.client)
            ts = clocks.get(ev.client, 0.0)
            dur = ev.cost_ms * 1000.0
            label = hit_level_label(ev.hit_level, level_names)
            trace_events.append(
                {
                    "name": f"chunk {ev.chunk}",
                    "cat": label if ev.hit_level >= 0 else "miss",
                    "ph": "X",
                    "ts": ts,
                    "dur": dur,
                    "pid": 0,
                    "tid": ev.client,
                    "cname": _access_color(ev.hit_level),
                    "args": {
                        "chunk": ev.chunk,
                        "served_by": label,
                        "write": ev.write,
                        "cold": ev.cold,
                        "step": ev.step,
                    },
                }
            )
            clocks[ev.client] = ts + dur
        elif isinstance(ev, Writeback):
            clients_seen.add(ev.client)
            ts = clocks.get(ev.client, 0.0)
            dur = ev.cost_ms * 1000.0
            trace_events.append(
                {
                    "name": f"writeback {ev.chunk}",
                    "cat": "writeback",
                    "ph": "X",
                    "ts": ts,
                    "dur": dur,
                    "pid": 0,
                    "tid": ev.client,
                    "cname": "grey",
                    "args": {"chunk": ev.chunk, "step": ev.step},
                }
            )
            clocks[ev.client] = ts + dur
        elif isinstance(ev, Prefetch):
            clients_seen.add(ev.client)
            trace_events.append(
                {
                    "name": f"prefetch {ev.chunk}",
                    "cat": "prefetch",
                    "ph": "i",
                    "s": "t",
                    "ts": clocks.get(ev.client, 0.0),
                    "pid": 0,
                    "tid": ev.client,
                    "args": {"chunk": ev.chunk, "cache": ev.cache},
                }
            )
        # Fill/Evict/Sync are bookkeeping, not timeline slices.

    name_meta: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": "repro simulation"},
        }
    ]
    for c in sorted(clients_seen):
        name_meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": c,
                "args": {"name": f"client {c}"},
            }
        )
        name_meta.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": 0,
                "tid": c,
                "args": {"sort_index": c},
            }
        )

    return {
        "traceEvents": name_meta + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "format_version": EVENTS_FORMAT_VERSION,
            **(meta or {}),
        },
    }


def write_chrome_trace(
    path: str | pathlib.Path,
    events: Iterable[TraceEvent],
    level_names: Sequence[str] = ("L1", "L2", "L3"),
    meta: dict[str, Any] | None = None,
) -> None:
    """Write a Chrome-trace JSON document for ``chrome://tracing``/Perfetto."""
    doc = to_chrome_trace(events, level_names, meta)
    pathlib.Path(path).write_text(json.dumps(doc) + "\n")
