"""Recorder protocol the simulation engine emits events into.

The engine (:func:`repro.simulator.engine.simulate`) takes an optional
``recorder``; ``None`` (the default) and :class:`NullRecorder` are the
*disabled* states — the engine detects them and skips every emission
site, so tracing costs nothing unless asked for.  :class:`MemoryRecorder`
collects the full event list for export, replay verification and
mapping diffs.

The protocol is method-per-event rather than object-per-event so a
recorder can choose its own storage (append dataclasses, stream to a
file, count into histograms) without the engine allocating anything on
behalf of disabled or counting recorders.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterable, Protocol, runtime_checkable

from repro.trace.events import (
    Access,
    Evict,
    Fill,
    Prefetch,
    Sync,
    TraceEvent,
    Writeback,
)

__all__ = ["TraceRecorder", "NullRecorder", "MemoryRecorder"]


@runtime_checkable
class TraceRecorder(Protocol):
    """What the engine calls at each instrumentation site.

    ``enabled`` is the zero-overhead switch: the engine normalises any
    recorder whose ``enabled`` is false to ``None`` once, before the hot
    loop, so a disabled recorder's methods are never invoked.
    """

    enabled: bool

    def access(
        self,
        step: int,
        client: int,
        chunk: int,
        hit_level: int,
        cost_ms: float,
        write: bool = False,
        cold: bool = False,
    ) -> None: ...

    def fill(self, step: int, client: int, cache: str, level: int, chunk: int) -> None: ...

    def evict(
        self,
        step: int,
        client: int,
        cache: str,
        level: int,
        victim: int,
        dirty: bool = False,
    ) -> None: ...

    def prefetch(self, step: int, client: int, cache: str, chunk: int) -> None: ...

    def writeback(self, step: int, client: int, chunk: int, cost_ms: float) -> None: ...

    def sync(self, client: int, count: int, cost_ms: float) -> None: ...


class NullRecorder:
    """A recorder that records nothing (explicit disabled state)."""

    enabled = False

    def access(self, *args, **kwargs) -> None:  # pragma: no cover - never called
        pass

    def fill(self, *args, **kwargs) -> None:  # pragma: no cover - never called
        pass

    def evict(self, *args, **kwargs) -> None:  # pragma: no cover - never called
        pass

    def prefetch(self, *args, **kwargs) -> None:  # pragma: no cover - never called
        pass

    def writeback(self, *args, **kwargs) -> None:  # pragma: no cover - never called
        pass

    def sync(self, *args, **kwargs) -> None:  # pragma: no cover - never called
        pass


class MemoryRecorder:
    """Collect every event in order, plus free-form run metadata."""

    enabled = True

    __slots__ = ("events", "meta")

    def __init__(self, meta: dict[str, Any] | None = None):
        self.events: list[TraceEvent] = []
        self.meta: dict[str, Any] = dict(meta or {})

    # -- TraceRecorder protocol ---------------------------------------------------

    def access(
        self,
        step: int,
        client: int,
        chunk: int,
        hit_level: int,
        cost_ms: float,
        write: bool = False,
        cold: bool = False,
    ) -> None:
        self.events.append(
            Access(step, client, chunk, hit_level, cost_ms, write, cold)
        )

    def fill(self, step: int, client: int, cache: str, level: int, chunk: int) -> None:
        self.events.append(Fill(step, client, cache, level, chunk))

    def evict(
        self,
        step: int,
        client: int,
        cache: str,
        level: int,
        victim: int,
        dirty: bool = False,
    ) -> None:
        self.events.append(Evict(step, client, cache, level, victim, dirty))

    def prefetch(self, step: int, client: int, cache: str, chunk: int) -> None:
        self.events.append(Prefetch(step, client, cache, chunk))

    def writeback(self, step: int, client: int, chunk: int, cost_ms: float) -> None:
        self.events.append(Writeback(step, client, chunk, cost_ms))

    def sync(self, client: int, count: int, cost_ms: float) -> None:
        self.events.append(Sync(client, count, cost_ms))

    # -- queries ------------------------------------------------------------------

    def accesses(self) -> list[Access]:
        return [e for e in self.events if isinstance(e, Access)]

    def of_kind(self, cls: type[TraceEvent]) -> list[TraceEvent]:
        return [e for e in self.events if isinstance(e, cls)]

    def hit_level_counts(self) -> Counter[int]:
        """Access count per hit level (``-1`` bucket = full misses)."""
        return Counter(e.hit_level for e in self.accesses())

    def extend(self, events: Iterable[TraceEvent]) -> None:
        self.events.extend(events)

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __repr__(self) -> str:
        return f"MemoryRecorder({len(self.events)} events)"
