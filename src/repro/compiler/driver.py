"""End-to-end compilation: nest + hierarchy → per-client restructured code.

Mirrors what the paper's Phoenix pass emits: for every client node, the
iteration chunks assigned to it (Fig. 5), in schedule order (Fig. 15
when enabled), each enumerated by an Omega-``codegen``-style loop band
(§4.2: "generate the code that enumerates the iterations in those
chunks"), with ``wait_for(...)`` synchronisation directives inserted
before chunks that consume another client's values (§5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compiler.emit import render_statement
from repro.core.dependences import _dependence_rank_pairs
from repro.core.mapper import InterProcessorMapper
from repro.core.mapping import Mapping
from repro.hierarchy.topology import CacheHierarchy
from repro.polyhedral.arrays import DataSpace
from repro.polyhedral.codegen import generate_bands, render_code
from repro.polyhedral.nest import LoopNest
from repro.telemetry import get_registry, phase
from repro.util.rng import make_rng

__all__ = ["CompiledProgram", "compile_nest"]


@dataclass
class CompiledProgram:
    """The compiler's output artifact."""

    nest: LoopNest
    mapping: Mapping
    #: client id -> restructured pseudo-C listing.
    client_code: dict[int, str]
    #: client id -> producer clients it synchronises with, per chunk.
    sync_directives: dict[int, list[str]] = field(default_factory=dict)
    compile_time_s: float = 0.0

    @property
    def num_clients(self) -> int:
        return len(self.client_code)

    def total_sync_directives(self) -> int:
        return sum(len(v) for v in self.sync_directives.values())

    def listing(self) -> str:
        """The whole program: every client's code, annotated."""
        parts = []
        for c in sorted(self.client_code):
            parts.append(f"// ===== client node {c} =====")
            parts.append(self.client_code[c])
        return "\n".join(parts)

    def __repr__(self) -> str:
        return (
            f"CompiledProgram(nest={self.nest.name!r}, "
            f"clients={self.num_clients}, "
            f"syncs={self.total_sync_directives()})"
        )


def _chunk_producers(
    mapping: Mapping, nest: LoopNest
) -> dict[int, dict[int, set[int]]]:
    """client -> {schedule position -> producer clients to wait for}.

    A chunk waits for every *other* client that owns a producer
    iteration of one of its iterations (uniform dependences only —
    non-uniform nests must be serialised upstream).
    """
    if mapping.distribution is None or mapping.schedule is None:
        return {}
    owner = mapping.client_of_iteration(nest.num_iterations)
    pairs = _dependence_rank_pairs(nest)
    if not pairs:
        return {}
    # rank -> producing client for each dependence (vectorised per dep).
    waits: dict[int, dict[int, set[int]]] = {}
    pool = mapping.distribution.pool
    for c, order in mapping.schedule.items():
        for pos, m in enumerate(order):
            ranks = pool[m].iterations
            need: set[int] = set()
            for src, dst in pairs:
                # dst ranks inside this chunk whose src is foreign.
                mask = np.isin(dst, ranks)
                if not mask.any():
                    continue
                foreign = owner[src[mask]]
                need.update(int(x) for x in foreign[foreign != c])
            if need:
                waits.setdefault(c, {})[pos] = need
    return waits


def compile_nest(
    nest: LoopNest,
    data_space: DataSpace,
    hierarchy: CacheHierarchy,
    mapper: InterProcessorMapper | None = None,
    seed: int = 0,
    emit_sync: bool = True,
) -> CompiledProgram:
    """Compile one parallel nest for the given storage cache hierarchy."""
    with phase("compile") as total:
        mapper = mapper or InterProcessorMapper(schedule=True)
        mapping = mapper.map(nest, data_space, hierarchy, make_rng(seed))
        mapping.validate(nest.num_iterations)

        with phase("codegen"):
            names = [b.name for b in nest.space.bounds]
            body = render_statement(nest, names)
            waits = _chunk_producers(mapping, nest) if emit_sync else {}

            client_code: dict[int, str] = {}
            sync_directives: dict[int, list[str]] = {}
            assert mapping.schedule is not None and mapping.distribution is not None
            pool = mapping.distribution.pool
            for c, order in mapping.schedule.items():
                lines: list[str] = []
                directives: list[str] = []
                for pos, m in enumerate(order):
                    chunk = pool[m]
                    lines.append(
                        f"// iteration chunk {m} "
                        f"({chunk.size} iterations, chunks {sorted(chunk.tag.chunks)})"
                    )
                    for producer in sorted(waits.get(c, {}).get(pos, ())):
                        directive = f"wait_for(client_{producer});"
                        lines.append(directive)
                        directives.append(directive)
                    points = nest.space.delinearize(chunk.iterations)
                    bands = generate_bands(points)
                    lines.append(render_code(bands, names, body=body))
                client_code[c] = "\n".join(lines) if lines else "// (no work)"
                if directives:
                    sync_directives[c] = directives

        program = CompiledProgram(
            nest=nest,
            mapping=mapping,
            client_code=client_code,
            sync_directives=sync_directives,
        )
        get_registry().counter("compiler.sync_directives").inc(
            program.total_sync_directives()
        )
    program.compile_time_s = total.elapsed
    return program
