"""Source rendering of references and loop-body statements.

Turns the polyhedral representation back into readable pseudo-C: an
:class:`~repro.polyhedral.affine.AffineExpr` becomes ``2*i0 + i1 + 3``
(with a ``% m`` wrapper when modular), an
:class:`~repro.polyhedral.references.ArrayRef` becomes
``A[i0 + 3][i1 - 1]``, and a loop body becomes the assignment statement
combining the nest's write and read references.
"""

from __future__ import annotations

from typing import Sequence

from repro.polyhedral.affine import AffineExpr
from repro.polyhedral.nest import LoopNest
from repro.polyhedral.references import ArrayRef

__all__ = ["render_expr", "render_reference", "render_statement"]


def render_expr(expr: AffineExpr, names: Sequence[str]) -> str:
    """Render one affine (possibly modular) subscript expression."""
    if len(names) != expr.depth:
        raise ValueError(
            f"expression has depth {expr.depth}, got {len(names)} names"
        )
    terms: list[str] = []
    for coeff, name in zip(expr.coeffs.tolist(), names):
        if coeff == 0:
            continue
        if coeff == 1:
            terms.append(name)
        elif coeff == -1:
            terms.append(f"-{name}")
        else:
            terms.append(f"{coeff}*{name}")
    if expr.const or not terms:
        terms.append(str(expr.const))
    body = " + ".join(terms).replace("+ -", "- ")
    if expr.modulus is not None:
        return f"({body}) % {expr.modulus}"
    return body


def render_reference(ref: ArrayRef, names: Sequence[str]) -> str:
    """Render a reference as ``A[...][...]``."""
    subs = "".join(f"[{render_expr(e, names)}]" for e in ref.map.exprs)
    return f"{ref.array_name}{subs}"


def render_statement(nest: LoopNest, names: Sequence[str] | None = None) -> str:
    """Render the nest's loop body as one assignment statement.

    The write references (or the first reference, for read-only nests)
    form the left-hand side; the reads combine additively — the shape of
    every kernel in the paper's examples.
    """
    names = list(names) if names is not None else [
        b.name for b in nest.space.bounds
    ]
    writes = [r for r in nest.references if r.is_write]
    reads = [r for r in nest.references if not r.is_write]
    if not writes:
        lhs_ref, rhs_refs = nest.references[0], list(nest.references[1:])
        lhs = f"use({render_reference(lhs_ref, names)})"
        if not rhs_refs:
            return lhs + ";"
        rhs = " + ".join(render_reference(r, names) for r in rhs_refs)
        return f"{lhs}; touch({rhs});"
    lhs = " = ".join(render_reference(w, names) for w in writes)
    if reads:
        rhs = " + ".join(render_reference(r, names) for r in reads)
    else:
        rhs = "compute()"
    return f"{lhs} = {rhs};"
