"""The compiler driver: from a loop nest to restructured per-client code.

The paper's contribution ships as a compiler pass (Phoenix, §5.1): its
output is *restructured source* — for every client node, a sequence of
loop fragments (generated with Omega's ``codegen``) that enumerates the
client's iteration chunks in schedule order, with inter-processor
synchronisation directives inserted where dependences cross clients
(§5.4).  :func:`compile_nest` produces exactly that artifact.
"""

from repro.compiler.driver import CompiledProgram, compile_nest
from repro.compiler.emit import render_reference, render_statement

__all__ = [
    "CompiledProgram",
    "compile_nest",
    "render_reference",
    "render_statement",
]
