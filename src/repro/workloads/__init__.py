"""The eight I/O-intensive application workloads (paper Table 2).

The paper evaluates hf, sar, contour, astro, e_elem, apsi, madbench2 and
wupwise — proprietary / out-of-core codes with 189-422 GB datasets we
cannot obtain.  Each is substituted by a synthetic loop-nest model whose
*access-pattern style* matches the application's published character
(see :mod:`repro.workloads.suite`), scaled down with dataset:cache
ratios preserved (DESIGN.md §2).
"""

from repro.workloads.base import Workload, WorkloadParams
from repro.workloads.suite import SUITE, get_workload, workload_names
from repro.workloads.paper_example import figure6_workload, figure7_hierarchy

__all__ = [
    "Workload",
    "WorkloadParams",
    "SUITE",
    "get_workload",
    "workload_names",
    "figure6_workload",
    "figure7_hierarchy",
]
