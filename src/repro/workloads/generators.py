"""Reusable access-pattern builders for the synthetic workload suite.

Each generator returns a ``(LoopNest, DataSpace)`` pair parameterised by
the chunk size, mirroring one family of out-of-core access behaviour:

* :func:`strided_1d` — Fig. 6-style multi-stride sweeps over a 1-D
  disk-resident array, optionally with a wrap-around (modulo) reference;
* :func:`stencil_2d` — relaxation-style neighbour stencils;
* :func:`blocked_transpose` — blocked ``A[i,j] / A^T`` sweeps (4-deep
  nests whose block coordinates keep tags coarse);
* :func:`modular_gather` — strided gathers ``A[(f·i) mod P]`` with a
  small hot table;
* :func:`planes_2d` — plane sweeps with a half-rotated second plane.

The iteration counts and tag counts scale with the data-space size in
chunks, keeping the mapping algorithm and the simulator tractable.
"""

from __future__ import annotations

import math

from repro.polyhedral.affine import AffineExpr
from repro.polyhedral.arrays import DataSpace, DiskArray
from repro.polyhedral.iterspace import IterationSpace
from repro.polyhedral.nest import LoopNest
from repro.polyhedral.references import ArrayRef
from repro.util.validation import check_positive


#: Distance unit for workload-intrinsic strides/windows, in elements.
#: Applications are defined in element space (a stride of "2 units" is
#: 128 elements ~ 128 KB) so that changing the analysis chunk size
#: (Fig. 14) changes *tag granularity only*, never the application.
STRIDE_UNIT = 64

__all__ = [
    "STRIDE_UNIT",
    "strided_1d",
    "stencil_2d",
    "blocked_transpose",
    "modular_gather",
    "planes_2d",
]


def strided_1d(
    name: str,
    num_chunks: int,
    chunk_elems: int,
    stride_chunks: tuple[int, ...] = (0, 2, 4),
    mod_window_chunks: int | None = 1,
    second_array_chunks: int = 0,
    sweeps: int = 1,
    rotate_chunks: int = 0,
    write_first: bool = True,
) -> tuple[LoopNest, DataSpace]:
    """Multi-stride 1-D sweep (the paper's Fig. 6 shape), repeated.

    ``for t in [0, sweeps): for i: A[i+s0*d], A[i+s1*d], …``, optionally
    plus a per-sweep-rotated partner ``A[(i + t·rot·d) % P]`` (the
    out-of-core revisit: every sweep pairs each element with a different
    far-away region), a wrap-around window ``A[i % (w*d)]`` and a second
    array ``B[i % |B|]``.
    """
    d = check_positive("chunk_elems", chunk_elems)
    m = check_positive("num_chunks", num_chunks)
    check_positive("sweeps", sweeps)
    if not stride_chunks:
        raise ValueError("need at least one stride")
    u = STRIDE_UNIT
    max_stride = max(stride_chunks)
    min_stride = min(stride_chunks)
    P = m * d
    if P <= (max_stride - min(0, min_stride)) * u:
        raise ValueError("array too small for the stride span")
    arrays = [DiskArray("A", (P,))]
    if second_array_chunks:
        arrays.append(DiskArray("B", (second_array_chunks * u,)))
    ds = DataSpace(arrays, d)

    lo = max(0, -min_stride) * u
    n_iters = P - max_stride * u - lo
    depth = 2 if sweeps > 1 else 1
    icoef = [0, 1] if depth == 2 else [1]

    def expr(const: int = 0, modulus: int | None = None, tcoef: int = 0):
        coeffs = list(icoef)
        if depth == 2:
            coeffs[0] = tcoef
        return AffineExpr(coeffs, const, modulus)

    if depth == 2:
        space = IterationSpace([(0, sweeps - 1), (lo, lo + n_iters - 1)])
    else:
        space = IterationSpace([(lo, lo + n_iters - 1)])
    refs = [
        ArrayRef("A", [expr(s * u)], is_write=(write_first and k == 0))
        for k, s in enumerate(stride_chunks)
    ]
    if rotate_chunks and depth == 2:
        refs.append(ArrayRef("A", [expr(0, modulus=P, tcoef=rotate_chunks * u)]))
    if mod_window_chunks:
        refs.append(ArrayRef("A", [expr(0, modulus=mod_window_chunks * u)]))
    if second_array_chunks:
        refs.append(ArrayRef("B", [expr(0, modulus=second_array_chunks * u)]))
    return LoopNest(name, space, refs), ds


def stencil_2d(
    name: str,
    rows: int,
    cols_chunks: int,
    chunk_elems: int,
    offsets: tuple[tuple[int, int], ...] = ((0, 0), (-1, 0), (1, 0), (0, 1)),
    sweeps: int = 1,
    row_rotate: int = 0,
    writes_center: bool = True,
) -> tuple[LoopNest, DataSpace]:
    """Neighbour stencil over a row-major 2-D array, repeated.

    Rows span ``cols_chunks`` whole data chunks so row identity decides
    chunk identity; the stencil shares chunks across adjacent rows.
    ``sweeps > 1`` adds an outer repetition loop and ``row_rotate`` makes
    each sweep start ``row_rotate`` rows lower (wavefront relaxation).
    """
    d = check_positive("chunk_elems", chunk_elems)
    rows = check_positive("rows", rows)
    check_positive("sweeps", sweeps)
    cols = check_positive("cols_chunks", cols_chunks) * STRIDE_UNIT
    ds = DataSpace([DiskArray("A", (rows, cols))], d)

    max_di = max(abs(di) for di, _ in offsets)
    max_dj = max(dj for _, dj in offsets)
    min_dj = min(dj for _, dj in offsets)
    col_lo, col_hi = max(0, -min_dj), cols - 1 - max(0, max_dj)
    depth = 3 if sweeps > 1 else 2

    def row_expr(di: int):
        if depth == 3:
            # Periodic rows: (t·rotate + i + di) mod rows — every sweep
            # starts ``row_rotate`` rows lower, stencil wraps at the edges.
            return AffineExpr([row_rotate, 1, 0], di, modulus=rows)
        return AffineExpr([1, 0], di)

    def col_expr(dj: int):
        return AffineExpr([0, 0, 1], dj) if depth == 3 else AffineExpr([0, 1], dj)

    if depth == 3:
        space = IterationSpace([(0, sweeps - 1), (0, rows - 1), (col_lo, col_hi)])
    else:
        space = IterationSpace([(max_di, rows - 1 - max_di), (col_lo, col_hi)])
    refs = [
        ArrayRef(
            "A",
            [row_expr(di), col_expr(dj)],
            is_write=(writes_center and di == 0 and dj == 0),
        )
        for di, dj in offsets
    ]
    return LoopNest(name, space, refs), ds


def blocked_transpose(
    name: str,
    n_chunks_per_dim: int,
    chunk_elems: int,
    rotate_cols: bool = False,
    writes: bool = True,
    revisit_rows: int = 0,
) -> tuple[LoopNest, DataSpace]:
    """Blocked ``A[i,j]`` + transposed-block access over an n×n array.

    The nest is 4-deep — ``(i1, i2, j1, j2)`` with ``i = i1·d + i2`` and
    ``j = j1·d + j2`` — so the transposed reference swaps *block*
    coordinates (``A[j1·d + i2, i1·d + j2]``) and stays affine while tags
    stay coarse (one tag per block pair).  ``rotate_cols`` adds a
    half-rotated column reference (madbench2-style sweep).
    """
    d = check_positive("chunk_elems", chunk_elems)
    nb = check_positive("n_chunks_per_dim", n_chunks_per_dim)
    u = STRIDE_UNIT  # the application's blocking factor, chunk-size independent
    n = nb * u
    ds = DataSpace([DiskArray("A", (n, n))], d)

    space = IterationSpace([(0, nb - 1), (0, u - 1), (0, nb - 1), (0, u - 1)])
    # i = u*i1 + i2 ; j = u*j1 + j2
    row = AffineExpr([u, 1, 0, 0])
    col = AffineExpr([0, 0, u, 1])
    t_row = AffineExpr([0, 1, u, 0])  # u*j1 + i2
    t_col = AffineExpr([u, 0, 0, 1])  # u*i1 + j2
    refs = [
        ArrayRef("A", [row, col], is_write=writes),
        ArrayRef("A", [t_row, t_col]),
    ]
    if rotate_cols:
        rot = AffineExpr([0, 0, u, 1], n // 2, modulus=n)
        refs.append(ArrayRef("A", [row, rot]))
    if revisit_rows:
        # Mid-range temporal revisit: the element row touched
        # revisit_rows i2-steps ago (same block row, earlier sub-row).
        back = AffineExpr([u, 1, 0, 0], -revisit_rows, modulus=n)
        refs.append(ArrayRef("A", [back, col]))
    return LoopNest(name, space, refs), ds


def modular_gather(
    name: str,
    num_chunks: int,
    chunk_elems: int,
    factor: int = 3,
    table_chunks: int = 4,
    sweeps: int = 1,
    rotate_chunks: int = 0,
    revisit_chunks: int = 0,
) -> tuple[LoopNest, DataSpace]:
    """Strided gather ``A[i], A[(f·i + t·rot·d) % P], B[i % |B|]`` (FEM-style).

    The gather stride scatters accesses across the array; per-sweep
    rotation makes each pass gather from shifted positions.
    """
    d = check_positive("chunk_elems", chunk_elems)
    m = check_positive("num_chunks", num_chunks)
    check_positive("factor", factor)
    check_positive("sweeps", sweeps)
    u = STRIDE_UNIT
    P = m * d
    nblocks = P // u
    ds = DataSpace(
        [DiskArray("A", (P,)), DiskArray("B", (table_chunks * u,))], d
    )
    # Blocked form: i = kb·u + e over fixed u-element blocks, so the
    # gather lands block-aligned and tags stay coarse.
    depth = 3 if sweeps > 1 else 2

    def ax(kcoef: int, ecoef: int, const: int = 0, modulus: int | None = None, tcoef: int = 0):
        coeffs = [tcoef, kcoef, ecoef] if depth == 3 else [kcoef, ecoef]
        return AffineExpr(coeffs, const, modulus)

    if depth == 3:
        space = IterationSpace([(0, sweeps - 1), (0, nblocks - 1), (0, u - 1)])
    else:
        space = IterationSpace([(0, nblocks - 1), (0, u - 1)])
    refs = [
        ArrayRef("A", [ax(u, 1)], is_write=True),
        ArrayRef(
            "A",
            [ax(factor * u, 1, 0, modulus=P, tcoef=rotate_chunks * u)],
        ),
        ArrayRef("B", [ax(u, 1, 0, modulus=table_chunks * u)]),
    ]
    if revisit_chunks:
        refs.insert(
            1, ArrayRef("A", [ax(u, 1, -revisit_chunks * u, modulus=P)])
        )
    return LoopNest(name, space, refs), ds


def planes_2d(
    name: str,
    rows: int,
    cols_chunks: int,
    chunk_elems: int,
    col_shift_chunks: int = 1,
    sweeps: int = 1,
    row_rotate: int = 1,
    revisit_cols_chunks: int = 0,
) -> tuple[LoopNest, DataSpace]:
    """Plane sweep: ``A[i,j], A[i,j+s·d], A[(i+t·rot+rows/2)%rows, j], B[j]``.

    Models alternating-direction solvers (apsi-style): a forward plane,
    a look-ahead column block, and a far-away plane revisited — the
    revisited plane rotates by ``row_rotate`` rows per sweep so each
    sweep pairs different planes.
    """
    d = check_positive("chunk_elems", chunk_elems)
    rows = check_positive("rows", rows)
    check_positive("sweeps", sweeps)
    cols = check_positive("cols_chunks", cols_chunks) * STRIDE_UNIT
    shift = col_shift_chunks * STRIDE_UNIT
    if shift >= cols:
        raise ValueError("column shift exceeds the row length")
    ds = DataSpace(
        [DiskArray("A", (rows, cols)), DiskArray("B", (cols,))], d
    )
    depth = 3 if sweeps > 1 else 2

    def ax(coeff_i: int, coeff_j: int, const: int = 0, modulus: int | None = None, tcoef: int = 0):
        coeffs = [tcoef, coeff_i, coeff_j] if depth == 3 else [coeff_i, coeff_j]
        return AffineExpr(coeffs, const, modulus)

    if depth == 3:
        space = IterationSpace(
            [(0, sweeps - 1), (0, rows - 1), (0, cols - 1 - shift)]
        )
    else:
        space = IterationSpace([(0, rows - 1), (0, cols - 1 - shift)])
    refs = [
        ArrayRef("A", [ax(1, 0), ax(0, 1)], is_write=True),
        ArrayRef("A", [ax(1, 0), ax(0, 1, shift)]),
        ArrayRef(
            "A",
            [
                ax(1, 0, rows // 2, modulus=rows, tcoef=row_rotate if depth == 3 else 0),
                ax(0, 1),
            ],
        ),
        ArrayRef("B", [ax(0, 1)]),
    ]
    if revisit_cols_chunks:
        # Mid-range revisit: a column block a few chunks back in this row.
        refs.insert(
            3,
            ArrayRef(
                "A",
                [ax(1, 0), ax(0, 1, -revisit_cols_chunks * STRIDE_UNIT, modulus=cols)],
            ),
        )
    return LoopNest(name, space, refs), ds
