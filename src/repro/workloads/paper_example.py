"""The paper's worked example (§4.4, Figures 6-9 and 16-17).

``figure6_workload`` builds exactly the Fig. 6 fragment::

    int A[m];
    for i = 0 to m - 4d - 1:
        A[i] = A[x] + A[i+4d] + A[i+2d]   # x = i % d

with A divided into 12 chunks of size d, and ``figure7_hierarchy`` the
Fig. 7 target (4 clients, 2 I/O nodes, 1 storage node).  The expected
Fig. 8 tags and the Fig. 9 / Fig. 17 assignments are asserted in the
test suite — the reproduction's ground-truth anchor.
"""

from __future__ import annotations

from repro.hierarchy.topology import CacheHierarchy, three_level_hierarchy
from repro.polyhedral.affine import AffineExpr
from repro.polyhedral.arrays import DataSpace, DiskArray
from repro.polyhedral.iterspace import IterationSpace, LoopBound
from repro.polyhedral.nest import LoopNest
from repro.polyhedral.references import ArrayRef

__all__ = ["figure6_workload", "figure7_hierarchy", "FIGURE8_TAGS"]

#: Fig. 8 tags: iteration chunk index (1-based, paper order) -> bitstring.
FIGURE8_TAGS = {
    1: "101010000000",
    2: "110101000000",
    3: "101010100000",
    4: "100101010000",
    5: "100010101000",
    6: "100001010100",
    7: "100000101010",
    8: "100000010101",
}


def figure6_workload(d: int = 16) -> tuple[LoopNest, DataSpace]:
    """The Fig. 6 code fragment with chunk size ``d`` (12 chunks total)."""
    if d < 2:
        raise ValueError("chunk size d must be at least 2")
    m = 12 * d
    ds = DataSpace([DiskArray("A", (m,))], d)
    space = IterationSpace([LoopBound(0, m - 4 * d - 1, "i")])
    refs = [
        ArrayRef("A", [AffineExpr([1])], is_write=True),  # A[i]  (written)
        ArrayRef("A", [AffineExpr([1], 0, modulus=d)]),  # A[x], x = i % d
        ArrayRef("A", [AffineExpr([1], 4 * d)]),  # A[i + 4d]
        ArrayRef("A", [AffineExpr([1], 2 * d)]),  # A[i + 2d]
    ]
    return LoopNest("figure6", space, refs), ds


def figure7_hierarchy(
    capacities: tuple[int, int, int] = (4, 8, 16), policy: str = "lru"
) -> CacheHierarchy:
    """Fig. 7: four clients, two I/O nodes, one storage node."""
    return three_level_hierarchy(4, 2, 1, capacities, policy)
