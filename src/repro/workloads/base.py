"""Workload abstraction: a named builder of (loop nest, data space)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.polyhedral.arrays import DataSpace
from repro.polyhedral.nest import LoopNest
from repro.util.validation import check_positive

__all__ = ["WorkloadParams", "Workload"]


@dataclass(frozen=True)
class WorkloadParams:
    """Scale knobs shared by every workload.

    ``chunk_elems`` is the data chunk size in elements (the scaled
    analogue of the paper's 64 KB chunk: one element stands for one
    1 KB block, so 64 elements == 64 KB).  ``data_chunks`` is the target
    total data-space size in chunks; builders size their arrays so the
    combined data space lands close to it regardless of chunk size —
    mirroring the paper, whose dataset sizes are fixed in bytes while
    Fig. 14 varies the chunk size.
    """

    chunk_elems: int = 64
    data_chunks: int = 1024

    def __post_init__(self):
        check_positive("chunk_elems", self.chunk_elems)
        check_positive("data_chunks", self.data_chunks)

    @property
    def data_elems(self) -> int:
        """Total elements the workload should spread over its arrays."""
        return self.chunk_elems * self.data_chunks


@dataclass(frozen=True)
class Workload:
    """One application model of the experimental suite."""

    name: str
    description: str
    builder: Callable[[WorkloadParams], tuple[LoopNest, DataSpace]]
    #: Table 2's (L1, L2, L3) miss rates of the paper's original version,
    #: in percent — reported alongside our measurements, never asserted.
    paper_miss_rates: tuple[float, float, float]

    def build(self, params: WorkloadParams) -> tuple[LoopNest, DataSpace]:
        nest, ds = self.builder(params)
        if nest.num_iterations <= 0:
            raise ValueError(f"workload {self.name} built an empty nest")
        return nest, ds

    def __repr__(self) -> str:
        return f"Workload({self.name!r})"
