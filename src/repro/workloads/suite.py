"""The eight-application suite (substitutes for paper Table 2).

Each entry models the published access character of the original code:

========== ============================================ =========================
name       paper application                            synthetic model
========== ============================================ =========================
hf         Hartree-Fock method                          Fig. 6 multi-stride sweep
sar        synthetic aperture radar kernel              half-image correlation
contour    contour displaying                           2-D neighbour stencil
astro      astronomical data analysis                   blocked transpose sweep
e_elem     finite-element electromagnetics              strided gather + table
apsi       pollutant distribution (SPEC)                plane sweep, rotated revisit
madbench2  cosmic microwave background                  blocked transpose + rotation
wupwise    quantum chromodynamics (SPEC)                two-array multi-stride
========== ============================================ =========================

Sizing: builders aim their combined data space at
``params.data_chunks`` chunks; per-app deviations (rounding to block
grids) stay within a few percent.
"""

from __future__ import annotations

import math

from repro.polyhedral.arrays import DataSpace
from repro.polyhedral.nest import LoopNest
from repro.workloads.base import Workload, WorkloadParams
from repro.workloads.generators import (
    blocked_transpose,
    modular_gather,
    planes_2d,
    stencil_2d,
    strided_1d,
)

__all__ = ["SUITE", "get_workload", "workload_names"]


def _hf(p: WorkloadParams) -> tuple[LoopNest, DataSpace]:
    from repro.workloads.generators import STRIDE_UNIT

    m = p.data_chunks
    half_units = max(1, (m * p.chunk_elems) // (2 * STRIDE_UNIT))
    return strided_1d(
        "hf",
        num_chunks=m,
        chunk_elems=p.chunk_elems,
        stride_chunks=(0, 2, 4, -5, -18),
        mod_window_chunks=1,
        sweeps=2,
        rotate_chunks=half_units,
    )


def _sar(p: WorkloadParams) -> tuple[LoopNest, DataSpace]:
    from repro.workloads.generators import STRIDE_UNIT

    image = max(6, (3 * p.data_chunks) // 4)
    kernel_units = max(
        1, ((p.data_chunks - image) * p.chunk_elems) // STRIDE_UNIT
    )
    d = p.chunk_elems
    image_units = (image * d) // STRIDE_UNIT
    return strided_1d(
        "sar",
        num_chunks=image,
        chunk_elems=d,
        stride_chunks=(0, image_units // 2, -4, -20),
        mod_window_chunks=None,
        second_array_chunks=kernel_units,
        sweeps=2,
        rotate_chunks=max(1, image_units // 4),
        write_first=False,
    )


def _contour(p: WorkloadParams) -> tuple[LoopNest, DataSpace]:
    from repro.workloads.generators import STRIDE_UNIT

    cols_chunks = 4
    rows = max(8, p.data_elems // (cols_chunks * STRIDE_UNIT))
    return stencil_2d(
        "contour",
        rows=rows,
        cols_chunks=cols_chunks,
        chunk_elems=p.chunk_elems,
        offsets=((0, 0), (-1, 0), (1, 0), (0, 1), (-3, 0)),
        sweeps=2,
        row_rotate=max(1, rows // 2),
        writes_center=False,
    )


def _astro(p: WorkloadParams) -> tuple[LoopNest, DataSpace]:
    # n x n with n^2 == total data elements, n rounded to whole
    # STRIDE_UNIT blocks per dimension (the app's fixed blocking).
    from repro.workloads.generators import STRIDE_UNIT

    nb = max(2, round(math.sqrt(p.data_elems)) // STRIDE_UNIT)
    return blocked_transpose(
        "astro",
        n_chunks_per_dim=nb,
        chunk_elems=p.chunk_elems,
        rotate_cols=False,
        writes=False,
        revisit_rows=2,
    )


def _e_elem(p: WorkloadParams) -> tuple[LoopNest, DataSpace]:
    table = 4
    from repro.workloads.generators import STRIDE_UNIT

    m = max(4, p.data_chunks - table)
    m_units = (m * p.chunk_elems) // STRIDE_UNIT
    return modular_gather(
        "e_elem",
        num_chunks=m,
        chunk_elems=p.chunk_elems,
        factor=3,
        table_chunks=table,
        sweeps=2,
        rotate_chunks=max(1, m_units // 3),
        revisit_chunks=8,
    )


def _apsi(p: WorkloadParams) -> tuple[LoopNest, DataSpace]:
    from repro.workloads.generators import STRIDE_UNIT

    cols_chunks = 8
    rows = max(8, p.data_elems // (cols_chunks * STRIDE_UNIT))
    return planes_2d(
        "apsi",
        rows=rows,
        cols_chunks=cols_chunks,
        chunk_elems=p.chunk_elems,
        col_shift_chunks=1,
        sweeps=2,
        row_rotate=max(1, rows // 4),
        revisit_cols_chunks=2,
    )


def _madbench2(p: WorkloadParams) -> tuple[LoopNest, DataSpace]:
    from repro.workloads.generators import STRIDE_UNIT

    nb = max(2, round(math.sqrt(p.data_elems)) // STRIDE_UNIT)
    return blocked_transpose(
        "madbench2",
        n_chunks_per_dim=nb,
        chunk_elems=p.chunk_elems,
        rotate_cols=True,
        revisit_rows=2,
    )


def _wupwise(p: WorkloadParams) -> tuple[LoopNest, DataSpace]:
    from repro.workloads.generators import STRIDE_UNIT

    a_chunks = max(10, (3 * p.data_chunks) // 5)
    b_units = max(
        2, ((p.data_chunks - a_chunks) * p.chunk_elems) // STRIDE_UNIT
    )
    a_units = (a_chunks * p.chunk_elems) // STRIDE_UNIT
    return strided_1d(
        "wupwise",
        num_chunks=a_chunks,
        chunk_elems=p.chunk_elems,
        stride_chunks=(0, 4, 8, -5, -22),
        mod_window_chunks=2,
        second_array_chunks=b_units,
        sweeps=2,
        rotate_chunks=max(1, a_units // 2),
    )


#: Table 2's per-application (L1, L2, L3) original-version miss rates (%).
_PAPER_RATES = {
    "hf": (21.3, 40.4, 47.9),
    "sar": (16.0, 23.3, 44.4),
    "contour": (15.3, 39.3, 67.1),
    "astro": (28.4, 54.4, 76.4),
    "e_elem": (8.3, 33.6, 49.9),
    "apsi": (17.7, 25.4, 36.0),
    "madbench2": (20.6, 34.7, 56.5),
    "wupwise": (20.8, 36.3, 52.8),
}

SUITE: tuple[Workload, ...] = (
    Workload("hf", "Hartree-Fock method", _hf, _PAPER_RATES["hf"]),
    Workload("sar", "Synthetic aperture radar kernel", _sar, _PAPER_RATES["sar"]),
    Workload("contour", "Contour displaying", _contour, _PAPER_RATES["contour"]),
    Workload("astro", "Analysis of astronomical data", _astro, _PAPER_RATES["astro"]),
    Workload(
        "e_elem",
        "Finite element electromagnetic modeling",
        _e_elem,
        _PAPER_RATES["e_elem"],
    ),
    Workload("apsi", "Pollutant distribution modeling", _apsi, _PAPER_RATES["apsi"]),
    Workload(
        "madbench2",
        "Cosmic microwave background radiation calculation",
        _madbench2,
        _PAPER_RATES["madbench2"],
    ),
    Workload(
        "wupwise", "Physics / quantum chromodynamics", _wupwise, _PAPER_RATES["wupwise"]
    ),
)


def workload_names() -> list[str]:
    return [w.name for w in SUITE]


def get_workload(name: str) -> Workload:
    for w in SUITE:
        if w.name == name:
            return w
    raise KeyError(f"unknown workload {name!r}; choose from {workload_names()}")
