"""Campaign comparison reports: baseline-vs-variant deltas per axis.

A report is a pure function of a campaign manifest — re-running
``repro campaign report`` over the same manifest reproduces the same
document byte for byte, and its :func:`report_digest` is pinnable in
CI.  The spec's ``baseline`` picks one axis value (say
``version=original``); cells are grouped by their remaining
coordinates, and inside each group every other value of that axis is
compared against the baseline cell: absolute deltas and ratios of I/O
latency, execution time and per-level miss rates.

Generator/trace scenarios have no mapper version; when the baseline
axis is ``version`` their groups carry no baseline cell and report
raw metrics without deltas rather than inventing a comparison.

:func:`render_report` emits the markdown form; :func:`diff_reports`
compares two manifests cell-by-cell (digest drift is listed before
metric movement, mirroring the perf gate's priorities).
"""

from __future__ import annotations

import hashlib
from typing import Any, Mapping

from repro.util.fingerprint import canonical_json

__all__ = [
    "CAMPAIGN_REPORT_VERSION",
    "REPORT_RECORD",
    "build_report",
    "report_digest",
    "render_report",
    "diff_manifests",
]

CAMPAIGN_REPORT_VERSION = 1
REPORT_RECORD = "repro-campaign-report"

#: Scalar metrics compared baseline-vs-variant.
_SCALARS = ("io_latency_ms", "execution_time_ms")


def _metrics_of(cell: Mapping[str, Any]) -> dict[str, Any] | None:
    summary = cell.get("summary")
    if not summary:
        return None
    return {
        "io_latency_ms": summary["io_latency_ms"],
        "execution_time_ms": summary["execution_time_ms"],
        "miss_rates": dict(summary.get("miss_rates", {})),
    }


def _delta(base: Mapping[str, Any], variant: Mapping[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for metric in _SCALARS:
        out[metric] = variant[metric] - base[metric]
    out["miss_rates"] = {
        level: variant["miss_rates"][level] - rate
        for level, rate in base["miss_rates"].items()
        if level in variant["miss_rates"]
    }
    return out


def _ratio(base: Mapping[str, Any], variant: Mapping[str, Any]) -> dict[str, Any]:
    return {
        metric: (variant[metric] / base[metric]) if base[metric] else None
        for metric in _SCALARS
    }


def build_report(manifest: Mapping[str, Any]) -> dict[str, Any]:
    """Assemble the comparison report from a (complete) manifest."""
    spec = manifest.get("spec", {})
    baseline_doc = spec.get("baseline", {})
    axis = baseline_doc.get("axis", "version")
    baseline_value = baseline_doc.get("value", "")

    cells = manifest.get("cells", {})
    statuses: dict[str, int] = {}
    for cell in cells.values():
        status = cell.get("status", "pending")
        statuses[status] = statuses.get(status, 0) + 1

    # Group by every coordinate except the baseline axis.
    groups: dict[str, dict[str, Any]] = {}
    for label, cell in sorted(cells.items()):
        coords = cell.get("coords", {})
        group_coords = {a: v for a, v in coords.items() if a != axis}
        group_key = canonical_json(group_coords)
        group = groups.setdefault(
            group_key, {"coords": group_coords, "baseline": None, "variants": []}
        )
        entry = {
            "value": coords.get(axis),
            "cell": label,
            "status": cell.get("status"),
            "digest": cell.get("digest"),
            "metrics": _metrics_of(cell),
        }
        if coords.get(axis) == baseline_value:
            group["baseline"] = entry
        else:
            group["variants"].append(entry)

    for group in groups.values():
        base = group["baseline"]
        base_metrics = base and base["metrics"]
        for variant in group["variants"]:
            if base_metrics and variant["metrics"]:
                variant["delta"] = _delta(base_metrics, variant["metrics"])
                variant["ratio"] = _ratio(base_metrics, variant["metrics"])
            else:
                variant["delta"] = None
                variant["ratio"] = None

    doc = {
        "record": REPORT_RECORD,
        "schema_version": CAMPAIGN_REPORT_VERSION,
        "name": manifest.get("name", ""),
        "fingerprint": manifest.get("fingerprint", ""),
        "baseline": {"axis": axis, "value": baseline_value},
        "cells": len(cells),
        "statuses": dict(sorted(statuses.items())),
        "groups": [groups[k] for k in sorted(groups)],
        "collectors": manifest.get("collectors", {}),
    }
    doc["digest"] = report_digest(doc)
    return doc


def report_digest(report: Mapping[str, Any]) -> str:
    """Hex SHA-256 of the report's deterministic core.

    Statuses (cache temperature) and the embedded digest itself are
    excluded; per-variant statuses inside groups are stripped the same
    way, so a warm re-run or a resumed run pins the same value.
    """

    def _strip(entry: Mapping[str, Any] | None) -> dict[str, Any] | None:
        if entry is None:
            return None
        return {k: v for k, v in entry.items() if k != "status"}

    core = {
        "fingerprint": report.get("fingerprint"),
        "baseline": report.get("baseline"),
        "groups": [
            {
                "coords": g["coords"],
                "baseline": _strip(g.get("baseline")),
                "variants": [_strip(v) for v in g.get("variants", [])],
            }
            for g in report.get("groups", [])
        ],
        "collectors": report.get("collectors"),
    }
    return hashlib.sha256(canonical_json(core).encode("utf-8")).hexdigest()


# -- rendering ----------------------------------------------------------------------


def _fmt(value: Any, places: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{places}f}"
    return str(value)


def render_report(report: Mapping[str, Any]) -> str:
    """The markdown form of a report document."""
    baseline = report.get("baseline", {})
    lines = [
        f"# Campaign report: {report.get('name', '?')}",
        "",
        f"- fingerprint: `{report.get('fingerprint', '')[:12]}`",
        f"- cells: {report.get('cells', 0)}"
        + "".join(
            f", {status}: {n}"
            for status, n in report.get("statuses", {}).items()
        ),
        f"- baseline: `{baseline.get('axis')}={baseline.get('value')}`",
        f"- report digest: `{report.get('digest', '')}`",
        "",
        "## Baseline vs variants",
        "",
        "| group | variant | io (ms) | io Δ | io x | exec (ms) | exec x |"
        " L1 miss Δ | L2 miss Δ | L3 miss Δ |",
        "|---|---|---|---|---|---|---|---|---|---|",
    ]
    for group in report.get("groups", []):
        coords = group["coords"]
        group_label = "/".join(coords[a] for a in sorted(coords)) or "-"
        base = group.get("baseline")
        if base and base.get("metrics"):
            m = base["metrics"]
            lines.append(
                f"| {group_label} | {base['value']} (baseline) "
                f"| {_fmt(m['io_latency_ms'], 1)} | - | 1.000 "
                f"| {_fmt(m['execution_time_ms'], 1)} | 1.000 | - | - | - |"
            )
        for variant in group.get("variants", []):
            m = variant.get("metrics")
            if not m:
                lines.append(
                    f"| {group_label} | {variant['value']} | - | - | - | - | - |"
                    " - | - | - |"
                )
                continue
            delta = variant.get("delta") or {}
            ratio = variant.get("ratio") or {}
            miss = delta.get("miss_rates", {})
            lines.append(
                f"| {group_label} | {variant['value']} "
                f"| {_fmt(m['io_latency_ms'], 1)} "
                f"| {_fmt(delta.get('io_latency_ms'), 1)} "
                f"| {_fmt(ratio.get('io_latency_ms'))} "
                f"| {_fmt(m['execution_time_ms'], 1)} "
                f"| {_fmt(ratio.get('execution_time_ms'))} "
                f"| {_fmt(miss.get('L1'))} | {_fmt(miss.get('L2'))} "
                f"| {_fmt(miss.get('L3'))} |"
            )
    collectors = report.get("collectors", {})
    if collectors:
        lines += ["", "## Collector aggregates", ""]
        for name, summary in sorted(collectors.items()):
            lines.append(f"### {name}")
            lines.append("```json")
            import json

            lines.append(json.dumps(summary, indent=2, sort_keys=True))
            lines.append("```")
    lines.append("")
    return "\n".join(lines)


# -- diffing ------------------------------------------------------------------------


def diff_manifests(
    a: Mapping[str, Any], b: Mapping[str, Any], epsilon: float = 1e-9
) -> dict[str, Any]:
    """Compare two campaign manifests cell by cell.

    Returns ``{identical, fingerprint_match, only_in_a, only_in_b,
    drifted, moved}`` where ``drifted`` lists cells whose result digest
    changed (a determinism/identity break) and ``moved`` lists cells
    whose metric summaries shifted beyond ``epsilon`` while keeping
    their digest (impossible unless summaries were computed differently
    — surfaced rather than hidden).
    """
    cells_a = a.get("cells", {})
    cells_b = b.get("cells", {})
    only_a = sorted(set(cells_a) - set(cells_b))
    only_b = sorted(set(cells_b) - set(cells_a))
    drifted: list[dict[str, Any]] = []
    moved: list[dict[str, Any]] = []
    for label in sorted(set(cells_a) & set(cells_b)):
        ca, cb = cells_a[label], cells_b[label]
        if ca.get("digest") != cb.get("digest"):
            drifted.append(
                {"cell": label, "a": ca.get("digest"), "b": cb.get("digest")}
            )
            continue
        sa, sb = ca.get("summary") or {}, cb.get("summary") or {}
        for metric in _SCALARS:
            va, vb = sa.get(metric), sb.get(metric)
            if va is not None and vb is not None and abs(va - vb) > epsilon:
                moved.append({"cell": label, "metric": metric, "a": va, "b": vb})
    return {
        "fingerprint_match": a.get("fingerprint") == b.get("fingerprint"),
        "cells_a": len(cells_a),
        "cells_b": len(cells_b),
        "only_in_a": only_a,
        "only_in_b": only_b,
        "drifted": drifted,
        "moved": moved,
        "identical": not (only_a or only_b or drifted or moved),
    }


def render_diff(diff: Mapping[str, Any]) -> str:
    lines = [
        f"fingerprints {'match' if diff['fingerprint_match'] else 'DIFFER'}; "
        f"{diff['cells_a']} vs {diff['cells_b']} cells"
    ]
    for label in diff["only_in_a"]:
        lines.append(f"  only in A: {label}")
    for label in diff["only_in_b"]:
        lines.append(f"  only in B: {label}")
    for d in diff["drifted"]:
        lines.append(
            f"  DIGEST DRIFT {d['cell']}: {str(d['a'])[:12]} -> {str(d['b'])[:12]}"
        )
    for m in diff["moved"]:
        lines.append(
            f"  moved {m['cell']} {m['metric']}: {m['a']:.6g} -> {m['b']:.6g}"
        )
    if diff["identical"]:
        lines.append("  identical: every common cell agrees")
    return "\n".join(lines)
