"""repro.campaign: declarative, resumable thousand-experiment campaigns.

A campaign is a JSON/YAML document naming axes — scenarios, mapping
versions, engines, config overrides — that expands into one
deduplicated sweep over the exec runtime, executes in resumable
chunks against the content-addressed result store, and folds results
through pluggable collectors into a baseline-vs-variant comparison
report.  See EXPERIMENTS.md for the runbook and ``examples/`` for
ready-made specs.
"""

from repro.campaign.collectors import (
    Collector,
    cell_summary,
    collector_names,
    make_collector,
    make_collectors,
    register_collector,
)
from repro.campaign.manifest import (
    ManifestWriter,
    load_manifest,
    manifest_digest,
    new_manifest,
)
from repro.campaign.matrix import (
    CampaignCell,
    CampaignPlan,
    apply_config_overrides,
    expand_campaign,
)
from repro.campaign.report import (
    build_report,
    diff_manifests,
    render_diff,
    render_report,
    report_digest,
)
from repro.campaign.runner import CampaignRun, run_campaign
from repro.campaign.spec import (
    CampaignSpec,
    campaign_fingerprint,
    campaign_from_dict,
    campaign_to_dict,
    load_campaign_file,
)

__all__ = [
    "CampaignSpec",
    "campaign_from_dict",
    "campaign_to_dict",
    "campaign_fingerprint",
    "load_campaign_file",
    "CampaignCell",
    "CampaignPlan",
    "expand_campaign",
    "apply_config_overrides",
    "Collector",
    "register_collector",
    "collector_names",
    "make_collector",
    "make_collectors",
    "cell_summary",
    "new_manifest",
    "load_manifest",
    "manifest_digest",
    "ManifestWriter",
    "build_report",
    "report_digest",
    "render_report",
    "diff_manifests",
    "render_diff",
    "CampaignRun",
    "run_campaign",
]
