"""The persisted campaign manifest: incremental, atomic, resumable.

One manifest JSON document records everything a campaign run learns:
the fingerprinted spec, per-cell key/status/result-digest/summary,
executor degradation/retry events, store statistics before and after,
and wall-clock totals.  :class:`ManifestWriter` rewrites the whole
document atomically (write-then-rename, the result-store discipline)
after every completed chunk, so a ``kill -9`` mid-campaign loses at
most the chunk in flight — and loses *no simulations at all* when a
persistent result store is attached, because results land in the store
before the manifest mentions them.

:func:`manifest_digest` hashes only the deterministic core — the spec
fingerprint and each cell's key and result digest plus metric summary —
never statuses or timings.  An interrupted-then-resumed campaign
therefore reproduces the digest of an uninterrupted one even though its
cells say ``cached`` where the first run said ``simulated``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from typing import Any, Mapping

from repro.util.fingerprint import canonical_json

__all__ = [
    "CAMPAIGN_MANIFEST_VERSION",
    "MANIFEST_RECORD",
    "new_manifest",
    "manifest_digest",
    "load_manifest",
    "ManifestWriter",
]

CAMPAIGN_MANIFEST_VERSION = 1
MANIFEST_RECORD = "repro-campaign-manifest"

#: Per-cell lifecycle states the manifest records.
CELL_STATUSES = ("pending", "cached", "simulated", "failed")


def new_manifest(spec_doc: Mapping[str, Any], fingerprint: str) -> dict[str, Any]:
    """A fresh manifest document for one campaign run."""
    return {
        "record": MANIFEST_RECORD,
        "schema_version": CAMPAIGN_MANIFEST_VERSION,
        "name": spec_doc.get("name", ""),
        "fingerprint": fingerprint,
        "spec": dict(spec_doc),
        "status": "running",
        "total_cells": 0,
        "completed": 0,
        "cells": {},
        "events": [],
        "store": {},
        "wall_clock_s": None,
        "cells_per_s": None,
    }


def manifest_digest(doc: Mapping[str, Any]) -> str:
    """Hex SHA-256 of the manifest's deterministic core.

    Covers the spec fingerprint and, per cell, the experiment key and
    the result digest + metric summary.  Excludes statuses (cache
    temperature), events, store stats and wall-clock — everything a
    restart or a different worker count may legitimately change.
    """
    core = {
        "fingerprint": doc.get("fingerprint"),
        "cells": {
            label: {
                "key": cell.get("key"),
                "digest": cell.get("digest"),
                "summary": cell.get("summary"),
            }
            for label, cell in sorted(doc.get("cells", {}).items())
        },
    }
    return hashlib.sha256(canonical_json(core).encode("utf-8")).hexdigest()


def load_manifest(path: str | pathlib.Path) -> dict[str, Any]:
    """Read and shape-check a manifest document."""
    p = pathlib.Path(path)
    if p.is_dir():
        p = p / "manifest.json"
    doc = json.loads(p.read_text(encoding="utf-8"))
    if not isinstance(doc, dict) or doc.get("record") != MANIFEST_RECORD:
        raise ValueError(f"{p}: not a {MANIFEST_RECORD} document")
    version = doc.get("schema_version")
    if version != CAMPAIGN_MANIFEST_VERSION:
        raise ValueError(
            f"{p}: manifest schema v{version!r} != v{CAMPAIGN_MANIFEST_VERSION}"
        )
    return doc


class ManifestWriter:
    """Owns one manifest document and its atomic on-disk mirror.

    ``path=None`` keeps the document in memory only (used by tests and
    ad-hoc API runs); every :meth:`save` otherwise rewrites the file
    via write-then-rename so readers — ``repro campaign status`` polls
    this file while a run is live — never observe a torn document.
    """

    def __init__(self, doc: dict[str, Any], path: str | pathlib.Path | None = None):
        self.doc = doc
        self.path = pathlib.Path(path) if path is not None else None

    def save(self) -> None:
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{self.path.name}.", suffix=".tmp", dir=self.path.parent
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(self.doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- update helpers -----------------------------------------------------------

    def set_cells(self, cells: Mapping[str, Mapping[str, Any]]) -> None:
        """Declare the full cell set (all ``pending``) before execution."""
        self.doc["cells"] = {
            label: dict(cell) for label, cell in sorted(cells.items())
        }
        self.doc["total_cells"] = len(self.doc["cells"])

    def update_cell(self, label: str, **fields: Any) -> None:
        cell = self.doc["cells"][label]
        cell.update({k: v for k, v in fields.items() if v is not None})
        self.doc["completed"] = sum(
            1 for c in self.doc["cells"].values() if c.get("status") != "pending"
        )

    def add_events(self, events: list[str]) -> None:
        if events:
            self.doc["events"].extend(events)

    def finish(self, status: str, wall_clock_s: float) -> None:
        self.doc["status"] = status
        self.doc["wall_clock_s"] = round(wall_clock_s, 3)
        completed = self.doc.get("completed", 0)
        self.doc["cells_per_s"] = (
            round(completed / wall_clock_s, 2) if wall_clock_s > 0 else None
        )
        self.doc["digest"] = manifest_digest(self.doc)
