"""Campaign execution: chunked, resumable, manifest-backed.

:func:`run_campaign` drives one expanded campaign through the exec
runtime in chunks.  The ordering discipline that makes a ``kill -9``
harmless: each chunk's results reach the result store *inside*
:func:`~repro.exec.plan.execute_plan` (store.put per simulation),
and only then does the manifest — rewritten atomically after the
chunk — mention them.  A restart re-expands the same spec to the same
keys, finds every completed cell warm in the store, and simulates only
what the kill actually lost: at most one chunk, usually less.

Resumability is therefore a property of the *store*, not of campaign
bookkeeping; the manifest merely records what happened.  A campaign
run with no persistent store still works — it just re-simulates from
scratch when restarted.

Failures degrade per cell: when a chunk's batch raises, the chunk is
re-run cell by cell — store hits return instantly, innocent cells
re-simulate — and only the cells that fail in isolation are marked
``failed``, so one poisoned cell cannot abort (or take down the rest
of) a thousand-cell run.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.campaign.collectors import Collector, cell_summary, make_collectors
from repro.campaign.manifest import ManifestWriter, new_manifest
from repro.campaign.matrix import CampaignCell, CampaignPlan, expand_campaign
from repro.campaign.report import build_report
from repro.campaign.spec import CampaignSpec, campaign_fingerprint, campaign_to_dict
from repro.exec.context import get_execution
from repro.exec.plan import execute_plan
from repro.scenario.runner import result_digest
from repro.util.log import get_logger

__all__ = ["CampaignRun", "run_campaign"]

_LOG = get_logger("campaign.runner")

#: Cells per manifest checkpoint.  Small enough that a kill loses
#: little bookkeeping, large enough that manifest rewrites stay a
#: rounding error next to simulation time.
DEFAULT_CHUNK_SIZE = 16


@dataclass
class CampaignRun:
    """Everything one :func:`run_campaign` call produced."""

    spec: CampaignSpec
    plan: CampaignPlan
    manifest: dict[str, Any]
    report: dict[str, Any]
    collectors: list[Collector] = field(default_factory=list)
    failed: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failed


def _chunks(cells: list[CampaignCell], size: int):
    for i in range(0, len(cells), size):
        yield cells[i : i + size]


def run_campaign(
    spec: CampaignSpec,
    base_config=None,
    manifest_path=None,
    executor=None,
    store=None,
    progress: Callable[[int, int], None] | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> CampaignRun:
    """Execute a campaign spec end to end; returns the full outcome.

    ``executor``/``store`` default from the active execution context
    (as :func:`~repro.exec.plan.execute_plan` does); ``base_config``
    overrides the spec's own ``scale``; ``manifest_path`` (file or
    directory) enables the incrementally-persisted manifest;
    ``progress(done, total)`` sees campaign-wide cell counts.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    started = time.monotonic()
    ctx = get_execution()
    executor = executor if executor is not None else ctx.executor
    store = store if store is not None else ctx.store

    plan = expand_campaign(spec, base_config)
    spec_doc = campaign_to_dict(spec)
    writer = ManifestWriter(
        new_manifest(spec_doc, campaign_fingerprint(spec)), manifest_path
    )
    writer.doc["expansion"] = {
        "cells": len(plan.cells),
        "excluded": plan.excluded,
        "duplicates": plan.duplicates,
    }
    if store is not None and hasattr(store, "stats"):
        writer.doc["store"]["before"] = dataclasses.asdict(store.stats())
    writer.set_cells(
        {
            cell.label: {
                "key": cell.key_digest,
                "coords": dict(cell.coords),
                "workload": cell.workload,
                "version": cell.version,
                "status": "pending",
            }
            for cell in plan.cells
        }
    )
    writer.save()

    collectors = make_collectors(spec.collectors)
    task_by_digest = {t.key.digest: t for t in plan.plan.tasks}
    total = len(plan.cells)
    completed = 0
    failed: list[str] = []

    for chunk in _chunks(plan.cells, chunk_size):
        tasks = [task_by_digest[c.key_digest] for c in chunk]
        outcomes: dict[str, str] = {}
        chunk_progress = None
        if progress is not None:
            base = completed

            def chunk_progress(done: int, _t: int, _base: int = base) -> None:
                progress(_base + done, total)

        try:
            results = execute_plan(
                tasks,
                executor=executor,
                store=store,
                progress=chunk_progress,
                outcomes=outcomes,
            )
        except Exception as exc:  # noqa: BLE001 - one bad cell must not
            # abort the campaign.  The pool path surfaces TaskError after
            # its bounded retries; the serial path raises the original
            # failure directly — both degrade the same way here.  A batch
            # that raises loses its siblings' in-flight results (store
            # write-back happens after the batch returns), so re-run the
            # chunk cell by cell: store hits come back instantly, innocent
            # cells re-simulate, and only the truly poisoned ones fail.
            _LOG.warning("chunk failed (%s); isolating cells", exc)
            results = {}
            for cell in chunk:
                try:
                    results.update(
                        execute_plan(
                            [task_by_digest[cell.key_digest]],
                            executor=executor,
                            store=store,
                            outcomes=outcomes,
                        )
                    )
                except Exception as cell_exc:  # noqa: BLE001
                    failed.append(cell.label)
                    writer.update_cell(
                        cell.label, status="failed", error=str(cell_exc)
                    )
        for cell in chunk:
            result = results.get(cell.key_digest)
            if result is None:
                continue
            writer.update_cell(
                cell.label,
                status=outcomes.get(cell.key_digest, "simulated"),
                digest=result_digest(result),
                summary=cell_summary(result),
            )
            for collector in collectors:
                collector.add(cell, result)
        if hasattr(executor, "pop_events"):
            writer.add_events(executor.pop_events())
        completed += len(chunk)
        if progress is not None:
            progress(completed, total)
        writer.save()

    writer.doc["collectors"] = {c.name: c.summary() for c in collectors}
    if store is not None and hasattr(store, "stats"):
        writer.doc["store"]["after"] = dataclasses.asdict(store.stats())
    writer.finish(
        "failed" if failed else "complete", time.monotonic() - started
    )
    writer.save()
    report = build_report(writer.doc)
    return CampaignRun(
        spec=spec,
        plan=plan,
        manifest=writer.doc,
        report=report,
        collectors=collectors,
        failed=failed,
    )
