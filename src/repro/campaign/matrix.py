"""Matrix expansion: a campaign spec into cells and one deduplicated plan.

Expansion walks the cartesian product of the four axes in document
order (scenarios, then versions, then engines, then configs), appends
the explicit ``pairings``, drops every combination an ``exclude``
filter matches, and dedupes the survivors by
:class:`~repro.exec.keys.ExperimentKey` digest — the same identity the
result store addresses — into a :class:`~repro.exec.plan.SweepPlan`.

Cells, not tasks, are the campaign's unit of accounting: each
:class:`CampaignCell` carries its axis coordinates, its human-readable
label (``hf/inter/fast/default``) and its key digest.  Two coordinates
that resolve to the same experiment (a ``version`` crossed with a
generator scenario that has no mapper, a config override that is a
no-op) collapse to one cell, so campaign totals never double-count a
simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.campaign.spec import CampaignSpec
from repro.scenario.registry import resolve_scenario
from repro.scenario.runner import effective_config, scenario_identity
from repro.scenario.spec import ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.exec.plan import SweepPlan
    from repro.experiments.config import SystemConfig

__all__ = ["CampaignCell", "CampaignPlan", "apply_config_overrides", "expand_campaign"]

#: Coordinate label for an axis that does not apply to a cell (the
#: version axis of a generator/trace scenario).
NO_AXIS = "-"


@dataclass(frozen=True)
class CampaignCell:
    """One unique experiment of the campaign, with its coordinates."""

    #: ``scenario/version/engine/config`` labels joined with ``/``.
    label: str
    #: Axis name -> value label, in :data:`CAMPAIGN_AXES` order.
    coords: tuple[tuple[str, str], ...]
    #: The cell's :class:`~repro.exec.keys.ExperimentKey` digest.
    key_digest: str
    #: Key identity bits, for display and manifests.
    workload: str
    version: str

    def coord(self, axis: str) -> str:
        for name, value in self.coords:
            if name == axis:
                return value
        raise KeyError(axis)

    def as_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "coords": dict(self.coords),
            "key": self.key_digest,
            "workload": self.workload,
            "version": self.version,
        }


@dataclass
class CampaignPlan:
    """The expanded campaign: unique cells plus their executable plan."""

    spec: CampaignSpec
    cells: list[CampaignCell] = field(default_factory=list)
    plan: "SweepPlan" = None  # type: ignore[assignment]
    #: Product combinations dropped by an exclude filter.
    excluded: int = 0
    #: Combinations that collapsed onto an earlier cell's key.
    duplicates: int = 0

    def cell_by_digest(self) -> dict[str, CampaignCell]:
        return {c.key_digest: c for c in self.cells}

    def __len__(self) -> int:
        return len(self.cells)


def apply_config_overrides(
    base: "SystemConfig", overrides: Mapping[str, Any]
) -> "SystemConfig":
    """Apply one ``configs``-axis entry onto the base config."""
    from dataclasses import replace

    doc = {k: v for k, v in overrides.items() if k != "name"}
    topology = doc.pop("topology", None)
    for key in ("cache_elems", "policies"):
        if key in doc and doc[key] is not None:
            doc[key] = tuple(doc[key])
    config = replace(base, **doc) if doc else base
    if topology is not None:
        config = config.with_topology(*topology)
    return config


def _matches(filter_doc: Mapping[str, Any], coords: Mapping[str, str]) -> bool:
    """True when every axis the filter names matches the cell's label."""
    for axis, wanted in filter_doc.items():
        value = coords.get(axis)
        if isinstance(wanted, str):
            if value != wanted:
                return False
        elif value not in wanted:
            return False
    return True


def _combos(spec: CampaignSpec) -> Iterable[dict[str, str]]:
    """Every coordinate combination: full product, then pairings."""
    scenario_labels = []
    for entry in spec.scenario_entries():
        scenario_labels.append(
            entry if isinstance(entry, str) else entry.get("name", "")
        )
    config_names = [c["name"] for c in spec.config_entries()]
    for s in scenario_labels:
        for v in spec.versions:
            for e in spec.engines:
                for c in config_names:
                    yield {"scenario": s, "version": v, "engine": e, "config": c}
    defaults = {
        "scenario": scenario_labels[0],
        "version": spec.versions[0],
        "engine": spec.engines[0],
        "config": config_names[0],
    }
    for pairing in spec.pairing_entries():
        yield {**defaults, **pairing}


def expand_campaign(
    spec: CampaignSpec, base_config: "SystemConfig | None" = None
) -> CampaignPlan:
    """Expand a spec into unique cells and one deduplicated sweep plan.

    ``base_config`` overrides the spec's own ``scale`` (the CLI's
    ``--scale`` wins over the document); per-cell config overrides then
    apply on top either way.  Scenario specs are deep-validated once
    here, so an absent trace file or unknown workload fails before any
    simulation starts.
    """
    from repro.exec.plan import SweepPlan
    from repro.experiments.config import DEFAULT_CONFIG, scaled_config

    if base_config is None:
        base_config = scaled_config(spec.scale) if spec.scale else DEFAULT_CONFIG

    # Resolve each axis entry once, not per combination.
    scenarios: dict[str, ScenarioSpec] = {}
    for entry in spec.scenario_entries():
        sspec = resolve_scenario(entry)
        sspec.deep_validate()
        label = entry if isinstance(entry, str) else sspec.name
        scenarios[label] = sspec
    configs = {
        doc["name"]: apply_config_overrides(base_config, doc)
        for doc in spec.config_entries()
    }
    excludes = spec.exclude_entries()

    plan = SweepPlan()
    out = CampaignPlan(spec=spec, plan=plan)
    seen: dict[str, CampaignCell] = {}
    for combo in _combos(spec):
        if any(_matches(f, combo) for f in excludes):
            out.excluded += 1
            continue
        sspec = scenarios[combo["scenario"]]
        if sspec.kind == "workload":
            version: str | None = combo["version"]
        else:
            # No mapper axis: collapse the coordinate so crossing a
            # generator scenario with N versions yields one cell.
            version = None
            combo = {**combo, "version": NO_AXIS}
        workload, v, scenario_fp = scenario_identity(sspec, version)
        key = plan.add(
            workload,
            effective_config(sspec, configs[combo["config"]]),
            v,
            engine={"engine": combo["engine"]},
            scenario=scenario_fp,
        )
        if key.digest in seen:
            out.duplicates += 1
            continue
        coords = tuple((axis, combo[axis]) for axis in ("scenario", "version", "engine", "config"))
        cell = CampaignCell(
            label="/".join(value for _, value in coords),
            coords=coords,
            key_digest=key.digest,
            workload=workload,
            version=v,
        )
        seen[key.digest] = cell
        out.cells.append(cell)
    return out
