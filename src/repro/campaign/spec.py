"""Declarative campaign specifications.

A :class:`CampaignSpec` names one *study*: a matrix of axes the
campaign sweeps —

``scenarios``
    Registered scenario names or inline
    :class:`~repro.scenario.spec.ScenarioSpec` documents (the paper's
    eight workloads are registered names, so ``"hf"`` works directly).
``versions``
    Mapper versions (``original``/``intra``/``inter``/``inter+sched``).
    The axis applies to ``workload``-kind scenarios only; generator and
    trace scenarios have no mapper, so their cells collapse onto a
    single ``-`` coordinate instead of multiplying.
``engines``
    Simulation engines (``reference``/``fast``), pinned explicitly into
    every cell's :class:`~repro.exec.keys.ExperimentKey`.
``configs``
    Named config-override documents applied onto the base
    :class:`~repro.experiments.config.SystemConfig` (capacities,
    policies, prefetch, chunk size, topology, seed …).

The cartesian product of the axes, plus explicit ``pairings`` and
minus ``exclude`` filters, expands into the campaign's cells
(:mod:`repro.campaign.matrix`).  ``baseline`` selects one axis value
as the comparison anchor for the report; ``collectors`` names the
aggregators cell results stream through.

:func:`campaign_fingerprint` hashes the normalised document (defaults
applied, free-text description excluded), so two specs that mean the
same study share one fingerprint and a resumed campaign can verify it
is resuming *this* study.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass
from typing import Any, Mapping

from repro.util.fingerprint import canonical_json

__all__ = [
    "CAMPAIGN_SPEC_VERSION",
    "CAMPAIGN_AXES",
    "CampaignSpec",
    "campaign_to_dict",
    "campaign_from_dict",
    "campaign_fingerprint",
    "load_campaign_file",
]

#: Bump when the campaign document layout changes; fingerprints embed it.
CAMPAIGN_SPEC_VERSION = 1

#: Cell coordinate names, in label order.
CAMPAIGN_AXES = ("scenario", "version", "engine", "config")

_RECORD = "repro-campaign"

#: Config-override keys ``configs`` entries may set (beyond ``name``).
CONFIG_OVERRIDE_KEYS = (
    "cache_elems",
    "chunk_elems",
    "prefetch_degree",
    "policies",
    "policy",
    "writeback",
    "seed",
    "balance_threshold",
    "alpha",
    "beta",
    "data_elems",
    "topology",
)

_TOP_LEVEL_KEYS = {
    "record",
    "spec_version",
    "name",
    "description",
    "scale",
    "axes",
    "pairings",
    "exclude",
    "baseline",
    "collectors",
}

_AXIS_KEYS = {"scenarios", "versions", "engines", "configs"}


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ValueError(message)


def _str_tuple(values: Any, what: str) -> tuple[str, ...]:
    _require(
        isinstance(values, (list, tuple)) and values,
        f"{what} must be a non-empty list",
    )
    for v in values:
        _require(isinstance(v, str) and v, f"{what} entries must be non-empty strings")
    return tuple(values)


@dataclass(frozen=True)
class CampaignSpec:
    """One validated campaign: axes, pairings, exclusions, baseline.

    Construct through :func:`campaign_from_dict` /
    :func:`load_campaign_file`; the constructor validates shape but the
    document form is the canonical interface.
    """

    name: str
    #: Axis values.  ``scenarios`` entries are names (str) or inline
    #: scenario-spec documents (canonical-JSON strings, kept hashable).
    scenarios: tuple[str, ...] = ()
    versions: tuple[str, ...] = ("inter+sched",)
    engines: tuple[str, ...] = ("fast",)
    #: Config overrides as canonical-JSON strings (each with a "name").
    configs: tuple[str, ...] = ('{"name":"default"}',)
    #: Explicit extra cells: canonical-JSON of partial coordinate docs.
    pairings: tuple[str, ...] = ()
    #: Exclusion filters: canonical-JSON of partial coordinate docs.
    exclude: tuple[str, ...] = ()
    #: (axis, value) the comparison report anchors on.
    baseline: tuple[str, str] = ("version", "")
    collectors: tuple[str, ...] = ()
    scale: int = 0
    description: str = ""

    # -- decoded views -------------------------------------------------------------

    def scenario_entries(self) -> list[str | dict[str, Any]]:
        """Each scenarios-axis entry: a registry name or an inline doc."""
        return [_maybe_json(s) for s in self.scenarios]

    def config_entries(self) -> list[dict[str, Any]]:
        return [json.loads(c) for c in self.configs]

    def pairing_entries(self) -> list[dict[str, Any]]:
        return [json.loads(p) for p in self.pairings]

    def exclude_entries(self) -> list[dict[str, Any]]:
        return [json.loads(e) for e in self.exclude]

    def __post_init__(self):
        _require(
            bool(self.name) and isinstance(self.name, str),
            "campaign name must be a non-empty string",
        )
        _require(bool(self.scenarios), "axes.scenarios must be non-empty")
        _require(self.scale >= 0, "scale must be non-negative")


def _maybe_json(entry: str) -> str | dict[str, Any]:
    return json.loads(entry) if entry.startswith("{") else entry


def _validate_config_entry(doc: Mapping[str, Any], index: int) -> None:
    _require(
        isinstance(doc, Mapping),
        f"configs[{index}] must be an object with a 'name'",
    )
    name = doc.get("name")
    _require(
        isinstance(name, str) and bool(name),
        f"configs[{index}] needs a non-empty 'name'",
    )
    extra = set(doc) - {"name"} - set(CONFIG_OVERRIDE_KEYS)
    _require(
        not extra,
        f"configs[{index}] ({name!r}): unknown override keys {sorted(extra)}; "
        f"choose from {CONFIG_OVERRIDE_KEYS}",
    )
    for key, length in (("cache_elems", 3), ("policies", 3), ("topology", 3)):
        if key in doc:
            value = doc[key]
            _require(
                isinstance(value, (list, tuple)) and len(value) == length,
                f"configs[{index}] ({name!r}): {key} must be a {length}-tuple",
            )


def _validate_partial_coords(
    doc: Mapping[str, Any], what: str, allow_lists: bool
) -> None:
    _require(isinstance(doc, Mapping) and doc, f"{what} entries must be non-empty objects")
    extra = set(doc) - set(CAMPAIGN_AXES)
    _require(
        not extra,
        f"{what} entry has unknown axes {sorted(extra)}; choose from {CAMPAIGN_AXES}",
    )
    for axis, value in doc.items():
        ok = isinstance(value, str) or (
            allow_lists
            and isinstance(value, (list, tuple))
            and all(isinstance(v, str) for v in value)
        )
        _require(
            ok,
            f"{what} entry {axis!r} must be a label"
            + (" or list of labels" if allow_lists else ""),
        )


def campaign_from_dict(doc: Mapping[str, Any]) -> CampaignSpec:
    """Parse and validate a campaign document into a :class:`CampaignSpec`."""
    _require(isinstance(doc, Mapping), "campaign spec must be an object")
    record = doc.get("record", _RECORD)
    _require(record == _RECORD, f"record must be {_RECORD!r}, got {record!r}")
    version = doc.get("spec_version", CAMPAIGN_SPEC_VERSION)
    _require(
        isinstance(version, int) and version <= CAMPAIGN_SPEC_VERSION,
        f"spec_version {version!r} is newer than supported v{CAMPAIGN_SPEC_VERSION}",
    )
    extra = set(doc) - _TOP_LEVEL_KEYS
    _require(not extra, f"unknown campaign keys {sorted(extra)}")

    axes = doc.get("axes")
    _require(isinstance(axes, Mapping), "campaign needs an 'axes' object")
    unknown_axes = set(axes) - _AXIS_KEYS
    _require(not unknown_axes, f"unknown axes {sorted(unknown_axes)}")

    # scenarios: names or inline spec documents (validated via the
    # scenario layer so a bad inline spec fails here, not mid-run).
    raw_scenarios = axes.get("scenarios")
    _require(
        isinstance(raw_scenarios, (list, tuple)) and raw_scenarios,
        "axes.scenarios must be a non-empty list",
    )
    from repro.scenario.spec import spec_from_dict

    scenarios: list[str] = []
    labels: list[str] = []
    for i, entry in enumerate(raw_scenarios):
        if isinstance(entry, str) and entry:
            scenarios.append(entry)
            labels.append(entry)
        elif isinstance(entry, Mapping):
            spec = spec_from_dict(entry)  # raises ValueError on a bad doc
            scenarios.append(canonical_json(dict(entry)))
            labels.append(spec.name)
        else:
            raise ValueError(
                f"axes.scenarios[{i}] must be a name or an inline spec document"
            )
    dupes = {l for l in labels if labels.count(l) > 1}
    _require(not dupes, f"duplicate scenario labels {sorted(dupes)}")

    versions = _str_tuple(axes.get("versions", ["inter+sched"]), "axes.versions")
    from repro.simulator.runner import VERSIONS

    for v in versions:
        _require(v in VERSIONS, f"unknown mapper version {v!r}; choose from {VERSIONS}")

    engines = _str_tuple(axes.get("engines", ["fast"]), "axes.engines")
    from repro.simulator.engines import ENGINE_NAMES

    for e in engines:
        _require(e in ENGINE_NAMES, f"unknown engine {e!r}; choose from {ENGINE_NAMES}")

    raw_configs = axes.get("configs", [{"name": "default"}])
    _require(
        isinstance(raw_configs, (list, tuple)) and raw_configs,
        "axes.configs must be a non-empty list",
    )
    config_names: list[str] = []
    configs: list[str] = []
    for i, entry in enumerate(raw_configs):
        _validate_config_entry(entry, i)
        config_names.append(entry["name"])
        configs.append(canonical_json(dict(entry)))
    dupes = {n for n in config_names if config_names.count(n) > 1}
    _require(not dupes, f"duplicate config names {sorted(dupes)}")

    axis_labels = {
        "scenario": labels,
        "version": list(versions),
        "engine": list(engines),
        "config": config_names,
    }

    # Pairings may reach outside the product on the version/engine axes
    # (that is their point: one-off cells without a full cross), but a
    # scenario or config must be declared on its axis so the expansion
    # can resolve it.
    pairing_domains = {
        "scenario": labels,
        "version": list(VERSIONS),
        "engine": list(ENGINE_NAMES),
        "config": config_names,
    }
    pairings = []
    for entry in doc.get("pairings", []) or []:
        _validate_partial_coords(entry, "pairings", allow_lists=False)
        for axis, value in entry.items():
            _require(
                value in pairing_domains[axis],
                f"pairing {axis}={value!r} names no known {axis} value",
            )
        pairings.append(canonical_json(dict(entry)))

    exclude = []
    for entry in doc.get("exclude", []) or []:
        _validate_partial_coords(entry, "exclude", allow_lists=True)
        exclude.append(canonical_json(dict(entry)))

    baseline_doc = doc.get("baseline") or {}
    _require(isinstance(baseline_doc, Mapping), "'baseline' must be an object")
    _require(
        not (set(baseline_doc) - {"axis", "value"}),
        "'baseline' takes only 'axis' and 'value'",
    )
    axis = baseline_doc.get("axis", "version")
    _require(axis in CAMPAIGN_AXES, f"baseline axis must be one of {CAMPAIGN_AXES}")
    value = baseline_doc.get("value", axis_labels[axis][0])
    _require(
        value in axis_labels[axis],
        f"baseline {axis}={value!r} names no {axis} axis value",
    )

    from repro.campaign.collectors import collector_names

    collectors = doc.get("collectors")
    if collectors is None:
        collectors = [n for n in collector_names() if n != "raw"]
    collectors = _str_tuple(collectors, "collectors")
    for c in collectors:
        _require(
            c in collector_names(),
            f"unknown collector {c!r}; choose from {collector_names()}",
        )

    scale = doc.get("scale", 0)
    _require(
        isinstance(scale, int) and not isinstance(scale, bool) and scale >= 0,
        "scale must be a non-negative integer",
    )

    return CampaignSpec(
        name=doc.get("name", ""),
        scenarios=tuple(scenarios),
        versions=versions,
        engines=engines,
        configs=tuple(configs),
        pairings=tuple(pairings),
        exclude=tuple(exclude),
        baseline=(axis, value),
        collectors=collectors,
        scale=scale,
        description=doc.get("description", ""),
    )


def campaign_to_dict(spec: CampaignSpec) -> dict[str, Any]:
    """The normalised JSON/YAML-safe document form (defaults applied)."""
    doc: dict[str, Any] = {
        "record": _RECORD,
        "spec_version": CAMPAIGN_SPEC_VERSION,
        "name": spec.name,
        "scale": spec.scale,
        "axes": {
            "scenarios": spec.scenario_entries(),
            "versions": list(spec.versions),
            "engines": list(spec.engines),
            "configs": spec.config_entries(),
        },
        "pairings": spec.pairing_entries(),
        "exclude": spec.exclude_entries(),
        "baseline": {"axis": spec.baseline[0], "value": spec.baseline[1]},
        "collectors": list(spec.collectors),
    }
    if spec.description:
        doc["description"] = spec.description
    return doc


def campaign_fingerprint(spec: CampaignSpec) -> str:
    """Hex SHA-256 identity of the normalised spec (description excluded).

    Two documents that normalise identically — e.g. one relying on
    defaults, one spelling them out — share a fingerprint, and a
    resumed campaign checks the manifest it is appending to carries the
    same one.
    """
    doc = campaign_to_dict(spec)
    doc.pop("description", None)
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()


def load_campaign_file(path: str | pathlib.Path) -> CampaignSpec:
    """Load one campaign from a ``.json``, ``.yaml`` or ``.yml`` file."""
    p = pathlib.Path(path)
    text = p.read_text(encoding="utf-8")
    if p.suffix.lower() in (".yaml", ".yml"):
        import yaml

        doc = yaml.safe_load(text)
    elif p.suffix.lower() == ".json":
        doc = json.loads(text)
    else:
        raise ValueError(
            f"cannot tell the campaign format of {p.name!r}; use .json/.yaml/.yml"
        )
    try:
        return campaign_from_dict(doc)
    except ValueError as exc:
        raise ValueError(f"{p}: {exc}") from None
