"""Pluggable campaign collectors: fold cell results into aggregates.

A :class:`Collector` sees every ``(cell, result)`` pair the campaign
executes — cached or freshly simulated, in whatever order chunks
complete — and folds it into an aggregate.  The contract that makes
collectors safe under chunked, resumable execution:

* :meth:`Collector.add` must be **order-insensitive** over cells, and
* :meth:`Collector.merge` must be **associative** (folding two partial
  collectors equals folding their cells into one),

so a campaign split across restarts, chunk sizes or worker counts
aggregates identically — the property
``tests/campaign/test_collectors.py`` checks with Hypothesis.

Built-ins (register more with :func:`register_collector`):

``hit-rates``
    Per-level access/hit/miss/writeback totals and the resulting
    campaign-wide hit rates.
``latency``
    SLO-style quantiles (p50/p95/p99, the same log-bucket
    :class:`~repro.telemetry.registry.Histogram` the obs layer uses)
    of per-cell I/O latency and execution time.
``footprint``
    Disk traffic totals: reads, writes, busy time, cache write-backs.
``raw``
    Every per-cell summary row, for piping into external tooling.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.telemetry.registry import Histogram

if TYPE_CHECKING:  # pragma: no cover
    from repro.campaign.matrix import CampaignCell
    from repro.simulator.metrics import ExperimentResult

__all__ = [
    "Collector",
    "HitRateCollector",
    "LatencyCollector",
    "FootprintCollector",
    "RawDumpCollector",
    "register_collector",
    "collector_names",
    "make_collector",
    "make_collectors",
    "cell_summary",
]


def cell_summary(result: "ExperimentResult") -> dict[str, Any]:
    """The JSON-safe per-cell metric summary manifests and reports use.

    Deterministic for a given experiment key (the engine-equivalence
    suite pins ``fast`` bit-identical to ``reference``), so it may
    participate in pinned digests.
    """
    sim = result.sim
    return {
        "io_latency_ms": sim.io_latency_ms,
        "execution_time_ms": sim.execution_time_ms,
        "miss_rates": {
            level: st.miss_rate for level, st in sorted(sim.level_stats.items())
        },
        "levels": {
            level: {
                "accesses": st.accesses,
                "hits": st.hits,
                "misses": st.misses,
                "writebacks": st.writebacks,
            }
            for level, st in sorted(sim.level_stats.items())
        },
        "disk_reads": sim.disk_reads,
        "disk_writes": sim.disk_writes,
    }


class Collector:
    """Base class: fold cell results into one mergeable aggregate."""

    #: Registry name; subclasses must override.
    name = ""

    def add(self, cell: "CampaignCell", result: "ExperimentResult") -> None:
        raise NotImplementedError

    def merge(self, other: "Collector") -> None:
        """Fold ``other`` (same collector type) into self. Associative."""
        raise NotImplementedError

    def summary(self) -> dict[str, Any]:
        """The JSON-safe aggregate for the campaign report."""
        raise NotImplementedError


class HitRateCollector(Collector):
    name = "hit-rates"

    def __init__(self):
        self.levels: dict[str, dict[str, int]] = {}
        self.cells = 0

    def add(self, cell, result) -> None:
        self.cells += 1
        for level, st in result.sim.level_stats.items():
            agg = self.levels.setdefault(
                level, {"accesses": 0, "hits": 0, "misses": 0, "writebacks": 0}
            )
            agg["accesses"] += st.accesses
            agg["hits"] += st.hits
            agg["misses"] += st.misses
            agg["writebacks"] += st.writebacks

    def merge(self, other: "HitRateCollector") -> None:
        self.cells += other.cells
        for level, theirs in other.levels.items():
            agg = self.levels.setdefault(
                level, {"accesses": 0, "hits": 0, "misses": 0, "writebacks": 0}
            )
            for field, value in theirs.items():
                agg[field] += value

    def summary(self) -> dict[str, Any]:
        return {
            "cells": self.cells,
            "levels": {
                level: {
                    **agg,
                    "hit_rate": agg["hits"] / agg["accesses"]
                    if agg["accesses"]
                    else 0.0,
                }
                for level, agg in sorted(self.levels.items())
            },
        }


class LatencyCollector(Collector):
    name = "latency"

    def __init__(self):
        self.io_ms = Histogram()
        self.exec_ms = Histogram()

    def add(self, cell, result) -> None:
        self.io_ms.observe(result.sim.io_latency_ms)
        self.exec_ms.observe(result.sim.execution_time_ms)

    def merge(self, other: "LatencyCollector") -> None:
        for mine, theirs in ((self.io_ms, other.io_ms), (self.exec_ms, other.exec_ms)):
            d = theirs.as_dict()
            mine.merge_summary(
                d["count"], d["sum"], d["min"], d["max"], d.get("buckets")
            )

    @staticmethod
    def _slo(hist: Histogram) -> dict[str, float]:
        if not hist.count:
            return {"count": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
        return {
            "count": hist.count,
            "p50": hist.quantile(0.50),
            "p95": hist.quantile(0.95),
            "p99": hist.quantile(0.99),
            "max": hist.max,
        }

    def summary(self) -> dict[str, Any]:
        return {
            "io_latency_ms": self._slo(self.io_ms),
            "execution_time_ms": self._slo(self.exec_ms),
        }


class FootprintCollector(Collector):
    name = "footprint"

    def __init__(self):
        self.disk_reads = 0
        self.disk_writes = 0
        self.disk_busy_ms = 0.0
        self.writebacks = 0

    def add(self, cell, result) -> None:
        sim = result.sim
        self.disk_reads += sim.disk_reads
        self.disk_writes += sim.disk_writes
        self.disk_busy_ms += sim.disk_busy_ms
        self.writebacks += sum(st.writebacks for st in sim.level_stats.values())

    def merge(self, other: "FootprintCollector") -> None:
        self.disk_reads += other.disk_reads
        self.disk_writes += other.disk_writes
        self.disk_busy_ms += other.disk_busy_ms
        self.writebacks += other.writebacks

    def summary(self) -> dict[str, Any]:
        return {
            "disk_reads": self.disk_reads,
            "disk_writes": self.disk_writes,
            "disk_busy_ms": self.disk_busy_ms,
            "writebacks": self.writebacks,
        }


class RawDumpCollector(Collector):
    name = "raw"

    def __init__(self):
        self.rows: list[dict[str, Any]] = []

    def add(self, cell, result) -> None:
        self.rows.append({"cell": cell.label, **cell_summary(result)})

    def merge(self, other: "RawDumpCollector") -> None:
        self.rows.extend(other.rows)

    def summary(self) -> dict[str, Any]:
        # Sorted at summary time so arrival order (chunking, restarts)
        # cannot leak into the report document.
        return {"rows": sorted(self.rows, key=lambda r: r["cell"])}


_REGISTRY: dict[str, Callable[[], Collector]] = {}


def register_collector(factory: Callable[[], Collector]) -> Callable[[], Collector]:
    """Register a collector factory under its ``name`` (decorator-friendly)."""
    probe = factory()
    if not probe.name:
        raise ValueError(f"{factory!r} must produce a collector with a name")
    if probe.name in _REGISTRY:
        raise ValueError(f"collector {probe.name!r} is already registered")
    _REGISTRY[probe.name] = factory
    return factory


for _factory in (HitRateCollector, LatencyCollector, FootprintCollector, RawDumpCollector):
    register_collector(_factory)


def collector_names() -> list[str]:
    return sorted(_REGISTRY)


def make_collector(name: str) -> Collector:
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise KeyError(
            f"unknown collector {name!r}; choose from {collector_names()}"
        ) from None


def make_collectors(names: Iterable[str]) -> list[Collector]:
    return [make_collector(n) for n in names]
