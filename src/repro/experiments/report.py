"""Experiment result tables: a uniform container + renderer.

Every experiment module returns an :class:`ExperimentReport` whose rows
mirror the corresponding paper table/figure (series per version, one row
per workload or per swept parameter), rendered with
:func:`repro.util.tables.format_table`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.util.tables import format_table

__all__ = ["ExperimentReport"]


@dataclass
class ExperimentReport:
    """One reproduced table/figure."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[Any]]
    notes: list[str] = field(default_factory=list)
    #: Free-form machine-readable payload (per-figure averages etc.).
    summary: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        out = format_table(
            self.headers, self.rows, title=f"{self.experiment_id}: {self.title}"
        )
        if self.summary:
            pairs = ", ".join(f"{k}={v:.3f}" for k, v in self.summary.items())
            out += f"\n  summary: {pairs}"
        for note in self.notes:
            out += f"\n  note: {note}"
        return out

    def row_dict(self, key_column: int = 0) -> dict[str, list[Any]]:
        """Rows indexed by the value of one column (usually the name)."""
        return {str(r[key_column]): list(r) for r in self.rows}

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
