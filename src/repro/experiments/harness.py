"""Shared sweep driver for the figure/table experiments.

Runs versions over the suite and computes the paper's normalized
values and average improvements.  Execution is delegated to the
:mod:`repro.exec` layer when an executor and/or result store is
supplied (directly, or via the active
:func:`repro.exec.use_execution` context): the sweep becomes a
deduplicated :class:`~repro.exec.plan.SweepPlan` whose tasks consult
the content-addressed store first and fan the misses out over the
process pool, so each unique (workload, config, version) key — the
store's cache key — simulates at most once per sweep *and* across
sweeps sharing a store.  With neither (and by default), the classic
serial in-process loop runs unchanged.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.simulator.metrics import ExperimentResult
from repro.simulator.runner import VERSIONS, run_experiment
from repro.workloads.base import Workload
from repro.workloads.suite import SUITE

__all__ = ["run_suite", "normalized_suite", "average_improvement"]


def run_suite(
    config,
    versions: Sequence[str] = VERSIONS,
    workloads: Iterable[Workload] | None = None,
    recorder_factory: Callable[[str, str], object] | None = None,
    executor=None,
    store=None,
) -> dict[str, dict[str, ExperimentResult]]:
    """Run every (workload, version) pair: ``{workload: {version: result}}``.

    ``executor`` (a :class:`repro.exec.ExperimentExecutor`) parallelizes
    the independent runs; ``store`` (a
    :class:`repro.exec.ResultStore`/:class:`~repro.exec.MemoryStore`)
    caches per-(workload, config, version) results within and across
    sweeps.  Both default from the active execution context
    (:func:`repro.exec.use_execution`); with neither, runs execute
    serially in-process exactly as before.

    ``recorder_factory(workload_name, version)`` may return a fresh
    :class:`repro.trace.recorder.TraceRecorder` per run; the recorder
    receives that run's event trace and is attached to the result as
    ``extra["trace"]``.  Recorders capture live engine state, so a
    recorded sweep always runs serially in-process and bypasses the
    store.
    """
    workloads = list(workloads) if workloads is not None else list(SUITE)
    if recorder_factory is None:
        from repro.exec.context import get_execution

        ctx = get_execution()
        executor = executor if executor is not None else ctx.executor
        store = store if store is not None else ctx.store
        if executor is not None or store is not None:
            return _run_suite_planned(config, versions, workloads, executor, store)
    out: dict[str, dict[str, ExperimentResult]] = {}
    for w in workloads:
        per_version: dict[str, ExperimentResult] = {}
        for v in versions:
            recorder = recorder_factory(w.name, v) if recorder_factory else None
            result = run_experiment(w, config, v, recorder=recorder)
            if recorder is not None:
                result.extra["trace"] = recorder
            per_version[v] = result
        out[w.name] = per_version
    return out


def _run_suite_planned(
    config,
    versions: Sequence[str],
    workloads: list[Workload],
    executor,
    store,
) -> dict[str, dict[str, ExperimentResult]]:
    """The exec-layer path: plan, dedupe, store-first, fan out."""
    from repro.exec.plan import SweepPlan, execute_plan

    plan = SweepPlan()
    keys = {
        (w.name, v): plan.add(w, config, v) for w in workloads for v in versions
    }
    results = execute_plan(plan, executor=executor, store=store)
    return {
        w.name: {v: results[keys[(w.name, v)].digest] for v in versions}
        for w in workloads
    }


def normalized_suite(
    results: dict[str, dict[str, ExperimentResult]],
    baseline: str = "original",
) -> dict[str, dict[str, dict[str, float]]]:
    """Normalize every version against the baseline, per workload.

    ``{workload: {version: {metric: normalized value}}}`` with metrics
    ``io_latency``, ``execution_time`` and ``miss_rate_L*``; the
    baseline's own entries are all exactly 1.0.
    """
    out: dict[str, dict[str, dict[str, float]]] = {}
    for wname, per_version in results.items():
        if baseline not in per_version:
            raise KeyError(f"baseline {baseline!r} missing for {wname}")
        base = per_version[baseline]
        out[wname] = {
            v: res.normalized_against(base) for v, res in per_version.items()
        }
    return out


def average_improvement(
    normalized: dict[str, dict[str, dict[str, float]]],
    version: str,
    metric: str,
) -> float:
    """Mean improvement of a metric across workloads, as a fraction.

    E.g. 0.263 means a 26.3 % average reduction versus the baseline —
    the units the paper's prose reports.
    """
    values = [per_version[version][metric] for per_version in normalized.values()]
    if not values:
        raise ValueError("no workloads in the normalized results")
    return 1.0 - sum(values) / len(values)
