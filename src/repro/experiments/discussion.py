"""§5.4 discussion experiments: multiple nests and dependence handling.

Two extensions the paper evaluates qualitatively:

* **Multi-nest mapping** — forming the ``G`` set from two nests at once
  exploits inter-nest reuse; the paper measured only ~3 % extra cache
  hits because >80 % of reuse is intra-nest.  We map two nests sharing
  one data space separately vs. jointly and report the cache-hit gain.
* **Dependence handling** — loops with carried dependences are mapped
  either by fusing dependent chunks (infinite edge weight — zero
  synchronisation, less parallelism) or by treating the dependence as
  sharing and inserting inter-processor synchronisation (the paper's
  implemented choice).  We report cross-client synchronisation counts
  and latencies for both strategies.
"""

from __future__ import annotations

import numpy as np

from repro.core.chunking import form_iteration_chunks
from repro.core.clustering import distribute_iterations
from repro.core.dependences import (
    DependenceStrategy,
    count_cross_client_syncs,
)
from repro.core.graph import build_affinity_graph
from repro.core.mapper import InterProcessorMapper
from repro.core.multinest import combine_nests
from repro.experiments.config import SystemConfig, scaled_config
from repro.experiments.report import ExperimentReport
from repro.polyhedral.affine import AffineExpr
from repro.polyhedral.arrays import DataSpace, DiskArray
from repro.polyhedral.iterspace import IterationSpace
from repro.polyhedral.nest import LoopNest
from repro.polyhedral.references import ArrayRef
from repro.simulator.engines import resolve_engine
from repro.simulator.streams import build_client_streams
from repro.storage.filesystem import ParallelFileSystem
from repro.util.rng import make_rng

__all__ = ["run_multinest", "run_dependences", "run", "two_phase_nests", "dependent_nest"]


def two_phase_nests(config: SystemConfig) -> tuple[list[LoopNest], DataSpace]:
    """Two computation phases over one shared data space.

    Phase 1 sweeps A with near strides; phase 2 re-reads A with a
    half-array pairing and writes B — inter-nest reuse lives in A.
    """
    d = config.chunk_elems
    m = config.data_chunks
    P = (3 * m // 4) * d
    pb = max(1, m // 4) * d
    ds = DataSpace([DiskArray("A", (P,)), DiskArray("B", (pb,))], d)
    n1 = P - 2 * d
    phase1 = LoopNest(
        "phase1",
        IterationSpace([(0, n1 - 1)]),
        [
            ArrayRef("A", [AffineExpr([1])]),
            ArrayRef("A", [AffineExpr([1], 2 * d)]),
        ],
    )
    phase2 = LoopNest(
        "phase2",
        IterationSpace([(0, P - 1)]),
        [
            ArrayRef("A", [AffineExpr([1])]),
            ArrayRef("A", [AffineExpr([1], P // 2, modulus=P)]),
            ArrayRef("B", [AffineExpr([1], 0, modulus=pb)], is_write=True),
        ],
    )
    return [phase1, phase2], ds


def dependent_nest(config: SystemConfig) -> tuple[LoopNest, DataSpace]:
    """A 1-D recurrence: ``A[i] = f(A[i - 2d], A[i + 2d])`` (carried deps)."""
    d = config.chunk_elems
    P = config.data_chunks * d
    ds = DataSpace([DiskArray("A", (P,))], d)
    space = IterationSpace([(2 * d, P - 2 * d - 1)])
    refs = [
        ArrayRef("A", [AffineExpr([1])], is_write=True),
        ArrayRef("A", [AffineExpr([1], -2 * d)]),
        ArrayRef("A", [AffineExpr([1], 2 * d)]),
    ]
    return LoopNest("recurrence", space, refs), ds


def _simulate_streams(streams, config: SystemConfig, iterations, sync_counts=None):
    hierarchy = config.build_hierarchy()
    fs = ParallelFileSystem(
        config.num_storage_nodes, config.chunk_elems * 1024, config.disk
    )
    return resolve_engine(None)(
        streams,
        hierarchy,
        fs,
        latency=config.latency,
        sync_counts=sync_counts,
        iterations_per_client=iterations,
    )


def run_multinest(config: SystemConfig | None = None) -> ExperimentReport:
    """Build (or fetch from the active result store) the multi-nest report."""
    config = config or scaled_config(4)
    from repro.exec.plan import cached_report

    return cached_report("discussion.multinest", config, _build_multinest)


def _build_multinest(config: SystemConfig) -> ExperimentReport:
    nests, ds = two_phase_nests(config)
    hierarchy = config.build_hierarchy()
    mapper = InterProcessorMapper(balance_threshold=config.balance_threshold)
    rng = make_rng(config.seed)

    # Separate mapping: each nest in isolation, executed back to back.
    streams_sep: dict[int, list[np.ndarray]] = {
        c: [] for c in range(config.num_clients)
    }
    iters_sep = {c: 0 for c in range(config.num_clients)}
    for nest in nests:
        mapping = mapper.map(nest, ds, hierarchy, rng)
        s = build_client_streams(mapping, nest, ds)
        for c in range(config.num_clients):
            streams_sep[c].append(s[c])
            iters_sep[c] += len(mapping.client_order[c])
    sep = _simulate_streams(
        {c: np.concatenate(v) for c, v in streams_sep.items()}, config, iters_sep
    )

    # Combined mapping: one G set over both nests (paper §5.4).
    combined, chunk_set = combine_nests(nests, ds)
    distribution = distribute_iterations(
        chunk_set, hierarchy, config.balance_threshold
    )
    mapping = mapper.map_distribution(distribution, hierarchy, rng)
    streams = build_client_streams(mapping, combined, ds)
    joint = _simulate_streams(streams, config, mapping.iteration_counts())

    hit_gain = (
        (joint.total_cache_hits() - sep.total_cache_hits())
        / sep.total_cache_hits()
        if sep.total_cache_hits()
        else 0.0
    )
    rows = [
        ["separate", sep.total_cache_hits(), f"{sep.io_latency_ms:.0f}"],
        ["combined", joint.total_cache_hits(), f"{joint.io_latency_ms:.0f}"],
    ]
    return ExperimentReport(
        "§5.4 multi-nest",
        "Mapping two nests jointly vs. separately",
        ["mapping", "total cache hits", "io latency (ms)"],
        rows,
        notes=[
            f"combined mapping changes cache hits by {100 * hit_gain:+.1f}%",
            "paper: handling nests together added only ~3% cache hits",
        ],
        summary={"hit_gain": hit_gain},
    )


def run_dependences(config: SystemConfig | None = None) -> ExperimentReport:
    """Build (or fetch from the active result store) the dependences report."""
    config = config or scaled_config(4)
    from repro.exec.plan import cached_report

    return cached_report("discussion.dependences", config, _build_dependences)


def _build_dependences(config: SystemConfig) -> ExperimentReport:
    nest, ds = dependent_nest(config)
    hierarchy = config.build_hierarchy()
    rows = []
    summary = {}
    for strategy in (DependenceStrategy.SYNC, DependenceStrategy.FUSE):
        mapper = InterProcessorMapper(
            balance_threshold=config.balance_threshold,
            dependence_strategy=strategy,
        )
        mapping = mapper.map(nest, ds, hierarchy, make_rng(config.seed))
        syncs = count_cross_client_syncs(mapping, nest)
        total_syncs = sum(syncs.values())
        streams = build_client_streams(mapping, nest, ds)
        sim = _simulate_streams(
            streams, config, mapping.iteration_counts(), sync_counts=syncs
        )
        rows.append(
            [
                strategy.value,
                total_syncs,
                f"{sim.io_latency_ms:.0f}",
                f"{sim.execution_time_ms:.0f}",
                f"{mapping.imbalance():.2f}",
            ]
        )
        summary[f"syncs_{strategy.value}"] = float(total_syncs)
        summary[f"exec_{strategy.value}"] = sim.execution_time_ms
    return ExperimentReport(
        "§5.4 dependences",
        "Dependence strategies: sync insertion vs. chunk fusion",
        ["strategy", "cross-client syncs", "io (ms)", "exec (ms)", "imbalance"],
        rows,
        notes=[
            "sync: dependences treated as data sharing, synchronisation charged per crossing",
            "fuse: dependent chunks forced into one cluster (fewer syncs, more imbalance)",
        ],
        summary=summary,
    )


def run(config: SystemConfig | None = None) -> list[ExperimentReport]:
    return [run_multinest(config), run_dependences(config)]


def main() -> None:  # pragma: no cover - CLI entry
    for report in run():
        print(report.render())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
