"""Figure 18: the local-scheduling enhancement (Fig. 15, α = β = 0.5).

Paper result: applying the scheduling pass after distribution reduces
L1 misses by 27.8 % on average versus the Original (the unscheduled
Inter-processor scheme managed 15.3 %), lifting the I/O-latency and
execution-time improvements to 30.7 % and 21.9 %.  The extra L2/L3
improvements are limited (under 3 % each).
"""

from __future__ import annotations

from repro.experiments.config import DEFAULT_CONFIG, SystemConfig
from repro.experiments.harness import normalized_suite, run_suite
from repro.experiments.report import ExperimentReport

__all__ = ["run", "VERSIONS_USED"]

#: The versions this figure sweeps (consumed by ``repro.exec.plan_all``).
VERSIONS_USED = ("original", "inter", "inter+sched")

#: Paper averages for the footer.
PAPER_AVG = {"L1_misses": 0.722, "io_latency": 0.693, "execution_time": 0.781}


def run(config: SystemConfig | None = None) -> ExperimentReport:
    config = config or DEFAULT_CONFIG
    results = run_suite(config, versions=VERSIONS_USED)
    normalized = normalized_suite(results)
    headers = [
        "application",
        "sched L1 misses",
        "sched io",
        "sched exec",
        "inter io (unscheduled)",
    ]
    rows = []
    sums = {"L1": 0.0, "io": 0.0, "exec": 0.0, "unsched_io": 0.0}
    for wname, per_version in results.items():
        base = per_version["original"].sim.level_stats
        sched = per_version["inter+sched"].sim.level_stats
        l1 = sched["L1"].misses / base["L1"].misses if base["L1"].misses else 1.0
        io = normalized[wname]["inter+sched"]["io_latency"]
        ex = normalized[wname]["inter+sched"]["execution_time"]
        uio = normalized[wname]["inter"]["io_latency"]
        sums["L1"] += l1
        sums["io"] += io
        sums["exec"] += ex
        sums["unsched_io"] += uio
        rows.append([wname, f"{l1:.3f}", f"{io:.3f}", f"{ex:.3f}", f"{uio:.3f}"])
    n = len(results)
    rows.append(
        [
            "AVERAGE",
            f"{sums['L1'] / n:.3f}",
            f"{sums['io'] / n:.3f}",
            f"{sums['exec'] / n:.3f}",
            f"{sums['unsched_io'] / n:.3f}",
        ]
    )
    summary = {
        "sched_L1_misses": sums["L1"] / n,
        "sched_io": sums["io"] / n,
        "sched_exec": sums["exec"] / n,
        "unsched_io": sums["unsched_io"] / n,
    }
    notes = [
        "values normalized to the Original version; alpha = beta = 0.5",
        "paper averages: L1 misses 0.722, io 0.693, exec 0.781",
    ]
    return ExperimentReport(
        "Figure 18",
        "Improvements from the iteration-chunk scheduling enhancement",
        headers,
        rows,
        notes=notes,
        summary=summary,
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
