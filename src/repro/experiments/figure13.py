"""Figure 13: cache-capacity sensitivity of the Inter-processor scheme.

Paper result: growing any cache capacity shrinks the savings (the
Original version benefits more from extra capacity, especially at the
shared I/O/storage levels), while halving the capacities boosts them —
"the increases in data set sizes … outmatch the increases in storage
cache capacities", so the approach gets *more* relevant over time.
"""

from __future__ import annotations

from repro.experiments.config import SystemConfig, scaled_config
from repro.experiments.harness import normalized_suite, run_suite
from repro.experiments.report import ExperimentReport

__all__ = ["run", "CAPACITY_MULTIPLIERS", "VERSIONS_USED", "sweep_configs"]

#: Per-level multipliers of the default capacities, mirroring the paper's
#: (1,1,1) / (2,2,2) / (4,4,4) GB style sweep plus an asymmetric point.
CAPACITY_MULTIPLIERS = (
    (0.5, 0.5, 0.5),
    (1.0, 1.0, 1.0),
    (2.0, 2.0, 2.0),
    (1.0, 2.0, 2.0),
    (4.0, 4.0, 4.0),
)

#: The version whose trend is asserted.  The scheduled scheme's
#: intra-client ordering is capacity-independent, so it cleanly shows
#: the paper's monotone relationship at our scale; the unscheduled
#: scheme's formation-order reuse interacts with the shrunken windows
#: below 1x (a downscale artifact) and is reported alongside.
TREND_VERSION = "inter+sched"

#: The versions this figure sweeps (consumed by ``repro.exec.plan_all``).
VERSIONS_USED = ("original", "inter", "inter+sched")


def sweep_configs(base: SystemConfig) -> list[SystemConfig]:
    """The exact configs ``run`` sweeps, in order (planner contract)."""
    l1, l2, l3 = base.cache_elems
    return [
        base.with_cache_capacities(
            max(64, int(l1 * m1)), max(64, int(l2 * m2)), max(64, int(l3 * m3))
        )
        for m1, m2, m3 in CAPACITY_MULTIPLIERS
    ]


def run(base_config: SystemConfig | None = None) -> ExperimentReport:
    base = base_config or scaled_config(4)
    headers = [
        "capacities (L1,L2,L3)",
        "inter io",
        "inter exec",
        "inter+sched io",
        "inter+sched exec",
    ]
    rows = []
    summary = {}
    for (m1, m2, m3), config in zip(CAPACITY_MULTIPLIERS, sweep_configs(base)):
        results = run_suite(config, versions=VERSIONS_USED)
        normalized = normalized_suite(results)
        label = f"({m1:g}x,{m2:g}x,{m3:g}x)"
        row = [label]
        for version in ("inter", "inter+sched"):
            io = sum(
                n[version]["io_latency"] for n in normalized.values()
            ) / len(normalized)
            ex = sum(
                n[version]["execution_time"] for n in normalized.values()
            ) / len(normalized)
            row.extend([f"{io:.3f}", f"{ex:.3f}"])
            summary[f"{version}_io_{m1:g}_{m2:g}_{m3:g}"] = io
        rows.append(row)
    notes = [
        "suite-average values normalized to the Original version per capacity point",
        "paper: bigger caches shrink the savings; halving capacities boosts them",
        "the scheduled scheme shows the monotone trend; the unscheduled one"
        " depends on window sizes below 1x (downscale artifact, see DESIGN.md)",
    ]
    return ExperimentReport(
        "Figure 13",
        "Normalized latencies with different cache capacities",
        headers,
        rows,
        notes=notes,
        summary=summary,
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
