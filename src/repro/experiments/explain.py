"""Explain a mapping's win: footprint, reuse and sharing attribution.

For one workload, breaks the Inter-processor scheme's advantage over the
Original mapping into the three miss sources the analysis package
measures:

* **compulsory** — per-client footprints (distinct chunks requested);
* **capacity** — the reuse-distance profile of the slowest client's
  request stream against the private cache size;
* **sharing** — how much pairwise chunk sharing sits below shared
  caches (the paper's two rules, §3).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.footprint import mapping_footprints
from repro.analysis.reuse import reuse_distance_profile
from repro.analysis.sharing import mapping_affinity_quality
from repro.experiments.config import DEFAULT_CONFIG, SystemConfig
from repro.experiments.report import ExperimentReport
from repro.simulator.runner import make_mapper
from repro.simulator.streams import build_client_streams
from repro.util.rng import derive_seed, make_rng
from repro.workloads.base import WorkloadParams
from repro.workloads.suite import get_workload

__all__ = ["run"]


def run(
    workload_name: str = "hf", config: SystemConfig | None = None
) -> ExperimentReport:
    config = config or DEFAULT_CONFIG
    workload = get_workload(workload_name)
    params = WorkloadParams(
        chunk_elems=config.chunk_elems, data_chunks=config.data_chunks
    )
    nest, data_space = workload.build(params)
    l1_chunks = config.capacity_chunks(0)

    rows = []
    for version in ("original", "inter", "inter+sched"):
        hierarchy = config.build_hierarchy()
        mapper = make_mapper(version, config)
        rng = make_rng(derive_seed(config.seed, workload_name, version))
        mapping = mapper.map(nest, data_space, hierarchy, rng)

        footprints = mapping_footprints(mapping, nest, data_space)
        total_fp = sum(footprints.values())
        max_fp = max(footprints.values())

        streams = build_client_streams(mapping, nest, data_space)
        longest = max(streams.values(), key=len)
        profile = reuse_distance_profile(longest)
        l1_hit = profile.hit_rate(l1_chunks)

        quality = mapping_affinity_quality(mapping, nest, data_space, hierarchy)
        rows.append(
            [
                version,
                total_fp,
                max_fp,
                f"{l1_hit:.2f}",
                f"{quality.sibling_sharing:.1f}",
                f"{quality.stranger_sharing:.1f}",
            ]
        )

    return ExperimentReport(
        f"Explain ({workload_name})",
        "Miss-source attribution per mapping version",
        [
            "version",
            "total footprint",
            "max client footprint",
            f"L1 hit rate (Mattson, C={l1_chunks})",
            "sibling sharing",
            "stranger sharing",
        ],
        rows,
        notes=[
            "footprint = compulsory misses; Mattson hit rate = capacity"
            " behaviour of the slowest client's stream;",
            "sibling vs stranger sharing = how much data sharing sits below"
            " shared caches (paper §3's two rules)",
        ],
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
