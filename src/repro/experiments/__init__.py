"""Experiment harness: one module per paper table/figure.

Every experiment returns a structured result *and* renders the same
rows/series the paper reports (normalized against the Original
version).  See DESIGN.md §4 for the experiment index and EXPERIMENTS.md
for paper-vs-measured numbers.
"""

from repro.experiments.config import (
    SystemConfig,
    DEFAULT_CONFIG,
    PAPER_TABLE1,
    scaled_config,
)
from repro.experiments.harness import (
    run_suite,
    normalized_suite,
    average_improvement,
)

__all__ = [
    "SystemConfig",
    "DEFAULT_CONFIG",
    "PAPER_TABLE1",
    "scaled_config",
    "run_suite",
    "normalized_suite",
    "average_improvement",
]
