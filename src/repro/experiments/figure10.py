"""Figure 10: normalized L1/L2/L3 misses, Intra- vs Inter-processor.

Paper result: the Intra-processor scheme reduces L1 misses (avg
-16.2 %) but barely touches L2/L3 (-2.1 %/-0.5 %); the Inter-processor
scheme reduces misses at *all three* levels (-15.3 %/-31.0 %/-24.6 %).

Metric note: the paper plots normalized miss *rates*.  At our scale a
better mapping also shrinks each shared level's *access count* (fewer
upper-level misses reach it), which makes rate ratios misleading —
absolute misses drop sharply while the rate denominator collapses.  We
therefore normalize *miss counts* against the Original version; on the
paper's testbed (where level access counts barely move) the two
normalizations coincide.
"""

from __future__ import annotations

from repro.experiments.config import DEFAULT_CONFIG, SystemConfig
from repro.experiments.harness import run_suite
from repro.experiments.report import ExperimentReport

__all__ = ["run", "LEVELS", "VERSIONS_USED"]

LEVELS = ("L1", "L2", "L3")

#: The versions this figure sweeps (consumed by ``repro.exec.plan_all``).
VERSIONS_USED = ("original", "intra", "inter")

#: Paper's average reductions, for the report footer (percent).
PAPER_AVG = {
    "intra": {"L1": 16.2, "L2": 2.1, "L3": 0.5},
    "inter": {"L1": 15.3, "L2": 31.0, "L3": 24.6},
}


def run(config: SystemConfig | None = None) -> ExperimentReport:
    config = config or DEFAULT_CONFIG
    results = run_suite(config, versions=VERSIONS_USED)
    headers = ["application"] + [
        f"{v} {l}" for v in ("intra", "inter") for l in LEVELS
    ]
    rows = []
    sums = {v: {l: 0.0 for l in LEVELS} for v in ("intra", "inter")}
    for wname, per_version in results.items():
        base = per_version["original"].sim.level_stats
        row = [wname]
        for v in ("intra", "inter"):
            st = per_version[v].sim.level_stats
            for l in LEVELS:
                ratio = st[l].misses / base[l].misses if base[l].misses else 1.0
                sums[v][l] += ratio
                row.append(f"{ratio:.3f}")
        rows.append(row)
    n = len(results)
    avg_row = ["AVERAGE"]
    summary = {}
    for v in ("intra", "inter"):
        for l in LEVELS:
            avg = sums[v][l] / n
            avg_row.append(f"{avg:.3f}")
            summary[f"{v}_{l}"] = avg
    rows.append(avg_row)
    notes = [
        "values are misses normalized to the Original version (1.0 = no change)",
        "paper average reductions: "
        + "; ".join(
            f"{v}: L1 -{PAPER_AVG[v]['L1']}%, L2 -{PAPER_AVG[v]['L2']}%, L3 -{PAPER_AVG[v]['L3']}%"
            for v in ("intra", "inter")
        ),
    ]
    return ExperimentReport(
        "Figure 10",
        "Normalized cache misses for the L1, L2 and L3 storage caches",
        headers,
        rows,
        notes=notes,
        summary=summary,
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
