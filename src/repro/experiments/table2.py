"""Table 2: per-application storage-cache miss rates of the Original version.

Reports, for every workload, the measured (L1, L2, L3) miss rates of the
*original* mapping under the default configuration, side by side with
the paper's values.  The paper's qualitative trend — miss rates increase
with cache depth because shared levels suffer destructive interference —
is the property to check; absolute values differ (synthetic workloads).
"""

from __future__ import annotations

from repro.experiments.config import DEFAULT_CONFIG, SystemConfig
from repro.experiments.harness import run_suite
from repro.experiments.report import ExperimentReport
from repro.workloads.suite import SUITE

__all__ = ["run", "VERSIONS_USED"]

#: The versions this table sweeps (consumed by ``repro.exec.plan_all``).
VERSIONS_USED = ("original",)


def run(config: SystemConfig | None = None) -> ExperimentReport:
    config = config or DEFAULT_CONFIG
    headers = [
        "application",
        "L1 (%)",
        "L2 (%)",
        "L3 (%)",
        "paper L1",
        "paper L2",
        "paper L3",
    ]
    rows = []
    deeper_is_worse = 0
    results = run_suite(config, versions=VERSIONS_USED)
    for w in SUITE:
        res = results[w.name]["original"]
        l1 = 100.0 * res.miss_rate("L1")
        l2 = 100.0 * res.miss_rate("L2")
        l3 = 100.0 * res.miss_rate("L3")
        if l1 <= l2 or l2 <= l3:
            deeper_is_worse += 1
        p1, p2, p3 = w.paper_miss_rates
        rows.append(
            [w.name, f"{l1:.1f}", f"{l2:.1f}", f"{l3:.1f}", p1, p2, p3]
        )
    return ExperimentReport(
        "Table 2",
        "Original-version miss rates per storage cache level",
        headers,
        rows,
        notes=[
            "paper columns are Table 2's values on the authors' testbed",
            f"{deeper_is_worse}/8 applications show the paper's deeper-level degradation trend",
        ],
        summary={"apps_with_deeper_degradation": float(deeper_is_worse)},
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
