"""Figure 14: data-chunk-size sensitivity of the Inter-processor scheme.

Paper result: smaller chunks mean smaller iteration chunks and finer
clustering, so savings *grow* as the chunk shrinks (16 KB best, 128 KB
worst) — at the price of compilation time (+75 % from 64 KB to 16 KB).
The dataset's byte size is held fixed, so the chunk count (and the tag
width r) grows as the chunk shrinks.
"""

from __future__ import annotations

from repro.experiments.config import SystemConfig, scaled_config
from repro.experiments.harness import normalized_suite, run_suite
from repro.experiments.report import ExperimentReport

__all__ = ["run", "CHUNK_SIZES", "VERSIONS_USED", "sweep_configs"]

#: Chunk sizes in elements (1 element == 1 KB: the paper's 16/32/64/128 KB).
CHUNK_SIZES = (16, 32, 64, 128)

#: The versions this figure sweeps (consumed by ``repro.exec.plan_all``).
VERSIONS_USED = ("original", "inter")


def sweep_configs(base: SystemConfig) -> list[SystemConfig]:
    """The exact configs ``run`` sweeps, in order (planner contract)."""
    return [base.with_chunk_elems(chunk) for chunk in CHUNK_SIZES]


def run(base_config: SystemConfig | None = None) -> ExperimentReport:
    base = base_config or scaled_config(4)
    headers = ["chunk size", "inter io", "inter exec", "mapping time (s)"]
    rows = []
    summary = {}
    for chunk, config in zip(CHUNK_SIZES, sweep_configs(base)):
        results = run_suite(config, versions=VERSIONS_USED)
        normalized = normalized_suite(results)
        io = sum(n["inter"]["io_latency"] for n in normalized.values()) / len(
            normalized
        )
        ex = sum(
            n["inter"]["execution_time"] for n in normalized.values()
        ) / len(normalized)
        map_t = sum(
            per_version["inter"].mapping_time_s
            for per_version in results.values()
        )
        rows.append(
            [f"{chunk}KB", f"{io:.3f}", f"{ex:.3f}", f"{map_t:.2f}"]
        )
        summary[f"io_{chunk}"] = io
        summary[f"mapping_s_{chunk}"] = map_t
    notes = [
        "suite-average values normalized to the Original version per chunk size",
        "paper: smaller chunks improve savings but inflate compilation time",
    ]
    return ExperimentReport(
        "Figure 14",
        "Normalized latencies with different data chunk sizes",
        headers,
        rows,
        notes=notes,
        summary=summary,
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
