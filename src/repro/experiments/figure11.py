"""Figure 11: normalized I/O latency and total execution time.

Paper result: Intra-processor improves I/O latency by 6.8 % and
execution time by 3.5 % on average; Inter-processor improves them by
26.3 % and 18.9 % — the headline numbers of the paper.
"""

from __future__ import annotations

from repro.experiments.config import DEFAULT_CONFIG, SystemConfig
from repro.experiments.harness import average_improvement, normalized_suite, run_suite
from repro.experiments.report import ExperimentReport

__all__ = ["run", "VERSIONS_USED"]

#: The versions this figure sweeps (consumed by ``repro.exec.plan_all``).
VERSIONS_USED = ("original", "intra", "inter")

#: The paper's average improvements (fractions).
PAPER_AVG = {
    "intra": {"io_latency": 0.068, "execution_time": 0.035},
    "inter": {"io_latency": 0.263, "execution_time": 0.189},
}


def run(config: SystemConfig | None = None) -> ExperimentReport:
    config = config or DEFAULT_CONFIG
    results = run_suite(config, versions=VERSIONS_USED)
    normalized = normalized_suite(results)
    headers = [
        "application",
        "intra io",
        "inter io",
        "intra exec",
        "inter exec",
    ]
    rows = []
    for wname, per_version in normalized.items():
        rows.append(
            [
                wname,
                f"{per_version['intra']['io_latency']:.3f}",
                f"{per_version['inter']['io_latency']:.3f}",
                f"{per_version['intra']['execution_time']:.3f}",
                f"{per_version['inter']['execution_time']:.3f}",
            ]
        )
    summary = {}
    avg_row = ["AVERAGE"]
    for metric in ("io_latency", "execution_time"):
        for version in ("intra", "inter"):
            imp = average_improvement(normalized, version, metric)
            summary[f"{version}_{metric}_improvement"] = imp
    avg_row.extend(
        [
            f"{1 - summary['intra_io_latency_improvement']:.3f}",
            f"{1 - summary['inter_io_latency_improvement']:.3f}",
            f"{1 - summary['intra_execution_time_improvement']:.3f}",
            f"{1 - summary['inter_execution_time_improvement']:.3f}",
        ]
    )
    rows.append(avg_row)
    notes = [
        "values normalized to the Original version (lower is better)",
        "paper averages: intra io -6.8%, exec -3.5%; inter io -26.3%, exec -18.9%",
    ]
    return ExperimentReport(
        "Figure 11",
        "Normalized I/O latency and total execution time",
        headers,
        rows,
        notes=notes,
        summary=summary,
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
