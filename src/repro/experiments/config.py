"""System configuration (paper Table 1) and its scaled-down analogue.

The paper's platform:

====================================== =======================
Number of client nodes                 64
Number of I/O nodes                    32
Number of storage nodes                16
Data striping                          all 16 storage nodes
Stripe size                            64 KB
Storage capacity/disk                  40 GB
RPM                                    10 000
Data chunk size                        64 KB
Cache capacity/node (client,I/O,stor.) (2 GB, 2 GB, 2 GB)
====================================== =======================

Scaling rule (DESIGN.md §2): one element models 1 KB, so a 64-element
chunk stands for the 64 KB chunk.  The paper's per-client dataset share
is 3-6.6 GB against 2 GB per-node caches (cache ≈ half a client share);
we keep L1 at that ratio (1024 data elements per client vs 1024-element
L1 nodes).  Shared levels grow per level (3072 L2, 12288 L3) instead of
staying byte-equal: after a four-decade downscale a byte-equal L2/L3
would be a single reuse window of a handful of chunks, erasing the
medium-range hits the paper's 32768-chunk caches provide; growing the
shared levels restores each level's *hit opportunity*, which is the
quantity the evaluation depends on.  Figure 13 sweeps these capacities
both ways.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.hierarchy.topology import CacheHierarchy, three_level_hierarchy
from repro.simulator.engine import LatencyModel
from repro.storage.disk import DiskParameters
from repro.util.validation import check_in_range, check_positive

__all__ = ["PAPER_TABLE1", "SystemConfig", "DEFAULT_CONFIG", "scaled_config"]

#: The literal Table 1 values, kept for documentation and reports.
PAPER_TABLE1 = {
    "num_clients": 64,
    "num_io_nodes": 32,
    "num_storage_nodes": 16,
    "stripe_size_kb": 64,
    "data_chunk_kb": 64,
    "storage_capacity_per_disk_gb": 40,
    "rpm": 10_000,
    "cache_capacity_per_node_gb": (2, 2, 2),
}


@dataclass(frozen=True)
class SystemConfig:
    """One experiment configuration (scaled units: 1 element == 1 KB)."""

    num_clients: int = 64
    num_io_nodes: int = 32
    num_storage_nodes: int = 16
    #: Data chunk (== stripe) size in elements; 64 models the 64 KB default.
    chunk_elems: int = 64
    #: Per-node cache capacities in elements (client, I/O, storage).
    #: The paper uses equal 2 GB nodes; at a 4-decade downscale equal
    #: bytes would leave every cache a single reuse window, so the scaled
    #: defaults grow per level to preserve each level's hit opportunity
    #: (per-client share: 1024 data elements vs 1024 L1, 1536 L2, 3072 L3).
    cache_elems: tuple[int, int, int] = (1024, 3072, 12288)
    #: Replacement policy of every storage cache (uniform default).
    policy: str = "lru"
    #: Optional per-level policy override, leaf first (L1, L2, L3); when
    #: set it wins over :attr:`policy`.  The paper manages every cache
    #: with LRU but stresses the mapping "can work with any storage
    #: caching policy" — this is the knob the scenario layer uses to
    #: exercise that claim (e.g. RRIP at L2, ARC at L3).
    policies: tuple[str, str, str] | None = None
    #: Fig. 5 balance threshold (fraction of mean iterations; paper: 10 %).
    balance_threshold: float = 0.10
    #: Fig. 15 reuse weights (paper's best setting).
    alpha: float = 0.5
    beta: float = 0.5
    #: Workload data-space size in chunks *at the default chunk size*; the
    #: byte-equivalent total is held fixed when chunk_elems changes.
    data_elems: int = 65536
    #: Root RNG seed (random chunk order of the unscheduled scheme, etc.).
    seed: int = 2010
    latency: LatencyModel = LatencyModel()
    disk: DiskParameters = DiskParameters()
    #: Sequential prefetch degree at the storage-node caches (0 = off).
    prefetch_degree: int = 0
    #: Account write-backs of dirty chunks (write-allocate, lazy flush).
    writeback: bool = False

    def __post_init__(self):
        check_positive("num_clients", self.num_clients)
        check_positive("num_io_nodes", self.num_io_nodes)
        check_positive("num_storage_nodes", self.num_storage_nodes)
        check_positive("chunk_elems", self.chunk_elems)
        if len(self.cache_elems) != 3:
            raise ValueError("cache_elems must be (L1, L2, L3)")
        for c in self.cache_elems:
            check_positive("cache capacity", c)
        if self.policies is not None:
            if len(self.policies) != 3:
                raise ValueError("policies must name one policy per level (L1, L2, L3)")
            from repro.hierarchy.policies import policy_names

            for p in self.policies:
                if p not in policy_names():
                    raise ValueError(
                        f"unknown policy {p!r}; choose from {policy_names()}"
                    )
        check_in_range("balance_threshold", self.balance_threshold, 0.0, 1.0)
        check_positive("data_elems", self.data_elems)
        if self.prefetch_degree < 0:
            raise ValueError("prefetch_degree must be non-negative")

    # -- derived ------------------------------------------------------------------

    @property
    def data_chunks(self) -> int:
        """Workload data-space target in chunks at this chunk size."""
        return max(1, self.data_elems // self.chunk_elems)

    def capacity_chunks(self, level: int) -> int:
        """Per-node capacity in chunks of cache level 0 (L1) / 1 / 2."""
        return max(1, self.cache_elems[level] // self.chunk_elems)

    def level_policies(self) -> tuple[str, str, str]:
        """Effective per-level policies, leaf first (L1, L2, L3)."""
        if self.policies is not None:
            return self.policies
        return (self.policy, self.policy, self.policy)

    def build_hierarchy(self) -> CacheHierarchy:
        return three_level_hierarchy(
            self.num_clients,
            self.num_io_nodes,
            self.num_storage_nodes,
            tuple(self.capacity_chunks(l) for l in range(3)),
            self.level_policies(),
        )

    def with_topology(self, w: int, x: int, y: int) -> "SystemConfig":
        """Fig. 12: change node counts, everything else fixed."""
        return replace(self, num_clients=w, num_io_nodes=x, num_storage_nodes=y)

    def with_cache_capacities(self, l1: int, l2: int, l3: int) -> "SystemConfig":
        """Fig. 13: change per-node cache capacities (in elements)."""
        return replace(self, cache_elems=(l1, l2, l3))

    def with_chunk_elems(self, chunk_elems: int) -> "SystemConfig":
        """Fig. 14: change the data chunk size (dataset bytes held fixed)."""
        return replace(self, chunk_elems=chunk_elems)

    def with_policies(self, l1: str, l2: str, l3: str) -> "SystemConfig":
        """Per-level replacement policies (scenario policy matrix)."""
        return replace(self, policies=(l1, l2, l3))


#: The default (Table 1 analogue) configuration used by the experiments.
DEFAULT_CONFIG = SystemConfig()


def scaled_config(scale: int = 4, **overrides) -> SystemConfig:
    """A smaller topology with identical fan-in ratios, for tests/benches.

    ``scale=4`` gives 16 clients / 8 I/O nodes / 4 storage nodes with a
    proportionally smaller dataset; ratios (clients per I/O cache, data
    per client, cache per client) all match :data:`DEFAULT_CONFIG`.
    """
    if scale < 1 or DEFAULT_CONFIG.num_clients % scale:
        raise ValueError(f"scale must divide {DEFAULT_CONFIG.num_clients}")
    base = SystemConfig(
        num_clients=DEFAULT_CONFIG.num_clients // scale,
        num_io_nodes=DEFAULT_CONFIG.num_io_nodes // scale,
        num_storage_nodes=DEFAULT_CONFIG.num_storage_nodes // scale,
        data_elems=DEFAULT_CONFIG.data_elems // scale,
    )
    return replace(base, **overrides) if overrides else base
