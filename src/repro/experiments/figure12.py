"""Figure 12: topology sensitivity of the Inter-processor scheme.

The paper sweeps (clients, I/O nodes, storage nodes) configurations and
finds the gains *grow* when either w/x (clients per I/O cache) or x/y
(I/O nodes per storage cache) grows — more sharing per cache means the
hierarchy-oblivious Original suffers more, so the normalized value of
the Inter-processor scheme drops.  (128,32,16) is called out as
especially encouraging.

The sweep runs at the quarter-scale topology (identical fan-in ratios,
DESIGN.md §2) so the whole grid stays cheap; the shipped topologies are
the scaled analogues of the paper's (64,32,16) → (128,32,16) family.
"""

from __future__ import annotations

from repro.experiments.config import SystemConfig, scaled_config
from repro.experiments.harness import normalized_suite, run_suite
from repro.experiments.report import ExperimentReport

__all__ = ["run", "TOPOLOGIES", "VERSIONS_USED", "sweep_configs"]

#: Scaled (w, x, y) sweep: default, deeper client fan-in, the paper's
#: "more clients, same I/O" headline case, and deeper I/O fan-in.
TOPOLOGIES = ((16, 8, 4), (16, 4, 4), (32, 8, 4), (16, 8, 2))

#: The versions this figure sweeps (consumed by ``repro.exec.plan_all``).
VERSIONS_USED = ("original", "inter", "inter+sched")


def sweep_configs(base: SystemConfig) -> list[SystemConfig]:
    """The exact configs ``run`` sweeps, in order (planner contract)."""
    return [base.with_topology(w, x, y) for w, x, y in TOPOLOGIES]


def run(base_config: SystemConfig | None = None) -> ExperimentReport:
    base = base_config or scaled_config(4)
    headers = [
        "topology (w,x,y)",
        "w/x",
        "x/y",
        "inter io",
        "inter exec",
        "inter+sched io",
        "inter+sched exec",
    ]
    rows = []
    summary = {}
    for (w, x, y), config in zip(TOPOLOGIES, sweep_configs(base)):
        results = run_suite(config, versions=VERSIONS_USED)
        normalized = normalized_suite(results)
        row = [f"({w},{x},{y})", w // x, x // y]
        for version in ("inter", "inter+sched"):
            io = sum(
                n[version]["io_latency"] for n in normalized.values()
            ) / len(normalized)
            ex = sum(
                n[version]["execution_time"] for n in normalized.values()
            ) / len(normalized)
            row.extend([f"{io:.3f}", f"{ex:.3f}"])
            summary[f"{version}_io_{w}_{x}_{y}"] = io
        rows.append(row)
    notes = [
        "suite-average values normalized to the Original version per topology",
        "paper: gains increase with w/x or x/y (deeper sharing per cache)",
        "the scheduled scheme reproduces the w/x trend; the x/y point is"
        " depressed by the halved total L3 at this scale (see EXPERIMENTS.md)",
    ]
    return ExperimentReport(
        "Figure 12",
        "Normalized I/O and execution latencies under different topologies",
        headers,
        rows,
        notes=notes,
        summary=summary,
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
