"""repro.telemetry — pipeline-wide metrics, phase profiling, run manifests.

The measurement substrate for the whole pipeline: a
:class:`MetricsRegistry` of counters/gauges/histograms with
hierarchical names and labels (``clustering.merges{level=L2}``), a
nesting :func:`phase` profiler that times every pipeline stage, and two
exporters — structured JSON run manifests (config fingerprint, git/
seed/versions, all metrics, per-phase timings, experiment summaries)
and Prometheus text exposition.

Disabled by default: the active registry starts as
:data:`NULL_REGISTRY`, whose instruments are shared no-ops, so
instrumentation costs nothing unless a run opts in::

    from repro.telemetry import MetricsRegistry, use_registry, build_manifest

    registry = MetricsRegistry()
    with use_registry(registry):
        run_experiment(...)
    save_manifest("run.json", build_manifest(registry, config=config))

The CLI wires this up via ``--telemetry PATH`` on every experiment
command and reads manifests back with ``repro metrics
show|export|diff|validate``.
"""

from repro.telemetry.declarations import PIPELINE_COUNTERS, declare_pipeline_metrics
from repro.telemetry.manifest import (
    MANIFEST_SCHEMA_VERSION,
    ManifestDiff,
    build_manifest,
    diff_manifests,
    load_manifest,
    save_manifest,
    validate_manifest,
)
from repro.telemetry.profiler import PhaseProfiler, PhaseRecord, phase
from repro.telemetry.prometheus import manifest_to_prometheus, to_prometheus_text
from repro.telemetry.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    label_snapshot,
    set_registry,
    thread_registry,
    use_registry,
)

__all__ = [
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "get_registry",
    "label_snapshot",
    "set_registry",
    "use_registry",
    "thread_registry",
    "phase",
    "PhaseProfiler",
    "PhaseRecord",
    "MANIFEST_SCHEMA_VERSION",
    "build_manifest",
    "save_manifest",
    "load_manifest",
    "validate_manifest",
    "ManifestDiff",
    "diff_manifests",
    "to_prometheus_text",
    "manifest_to_prometheus",
    "PIPELINE_COUNTERS",
    "declare_pipeline_metrics",
]
