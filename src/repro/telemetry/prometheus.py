"""Prometheus text exposition of the metrics registry.

Renders the registry (or a saved run manifest) in the Prometheus text
format, so run metrics can be pushed to a Pushgateway or scraped from a
file exporter without this repo growing a client dependency.

Conventions: names are prefixed ``repro_`` with dots mapped to
underscores; counters gain the ``_total`` suffix; histograms expose
cumulative ``_bucket{le=...}`` series over the registry's fixed
log-spaced bounds plus ``_count``/``_sum``, with ``_min``/``_max``
as companion gauges (Prometheus histograms don't carry exact
extrema).
"""

from __future__ import annotations

import re
from typing import Any

from repro.telemetry.registry import BUCKET_BOUNDS, MetricsRegistry, NullRegistry

__all__ = ["to_prometheus_text", "manifest_to_prometheus"]

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str, suffix: str = "") -> str:
    return "repro_" + _INVALID.sub("_", name.replace(".", "_")) + suffix


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(labels: dict[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_INVALID.sub("_", str(k))}="{_escape_label(str(v))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(value) if isinstance(value, float) else str(value)


class _Renderer:
    def __init__(self):
        self.lines: list[str] = []
        self._typed: set[str] = set()

    def header(self, name: str, kind: str, help_text: str) -> None:
        if name not in self._typed:
            self._typed.add(name)
            self.lines.append(f"# HELP {name} {help_text}")
            self.lines.append(f"# TYPE {name} {kind}")

    def sample(self, name: str, labels: dict[str, Any], value: float) -> None:
        self.lines.append(f"{name}{_labels(labels)} {_format_value(value)}")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n" if self.lines else ""


def _render_counter(r: _Renderer, name: str, labels: dict, value: float) -> None:
    metric = _metric_name(name, "_total")
    r.header(metric, "counter", f"repro counter {name}")
    r.sample(metric, labels, value)


def _render_gauge(r: _Renderer, name: str, labels: dict, value: float) -> None:
    metric = _metric_name(name)
    r.header(metric, "gauge", f"repro gauge {name}")
    r.sample(metric, labels, value)


def _render_histogram(
    r: _Renderer, name: str, labels: dict, summary: dict[str, Any]
) -> None:
    metric = _metric_name(name)
    r.header(metric, "histogram", f"repro histogram {name}")
    sparse = summary.get("buckets") or {}
    cumulative = 0
    # Emit only occupied bounds (plus +Inf): 74 fixed buckets per series
    # would swamp the exposition, and cumulative counts stay correct
    # under any subset of bounds.
    occupied = sorted(int(idx) for idx in sparse)
    for idx in occupied:
        cumulative += int(sparse[str(idx)])
        le = (
            _format_value(BUCKET_BOUNDS[idx])
            if idx < len(BUCKET_BOUNDS)
            else "+Inf"
        )
        if le != "+Inf":
            r.sample(metric + "_bucket", {**labels, "le": le}, cumulative)
    r.sample(metric + "_bucket", {**labels, "le": "+Inf"}, summary.get("count", 0))
    r.sample(metric + "_count", labels, summary.get("count", 0))
    r.sample(metric + "_sum", labels, summary.get("sum", 0.0))
    for bound in ("min", "max"):
        bound_metric = _metric_name(f"{name}.{bound}")
        r.header(bound_metric, "gauge", f"repro histogram {name} {bound}")
        r.sample(bound_metric, labels, summary.get(bound, 0.0))


def to_prometheus_text(registry: MetricsRegistry | NullRegistry) -> str:
    """Render the live registry in Prometheus text exposition format."""
    r = _Renderer()
    for name, labels, counter in registry.counters():
        _render_counter(r, name, labels, counter.value)
    for name, labels, gauge in registry.gauges():
        _render_gauge(r, name, labels, gauge.value)
    for name, labels, hist in registry.histograms():
        _render_histogram(r, name, labels, hist.as_dict())
    return r.text()


def manifest_to_prometheus(doc: dict[str, Any]) -> str:
    """Render a saved run manifest's metrics (plus phase timings).

    Phase-tree nodes become ``repro_phase_seconds{phase="a/b"}`` gauges
    so a manifest alone round-trips into dashboards.
    """
    from repro.telemetry.manifest import _flatten_phases

    r = _Renderer()
    metrics = doc.get("metrics", {})
    for entry in metrics.get("counters", []):
        _render_counter(r, entry["name"], entry.get("labels", {}), entry["value"])
    for entry in metrics.get("gauges", []):
        _render_gauge(r, entry["name"], entry.get("labels", {}), entry["value"])
    for entry in metrics.get("histograms", []):
        _render_histogram(r, entry["name"], entry.get("labels", {}), entry)
    phase_metric = "repro_phase_seconds"
    for path, seconds in sorted(_flatten_phases(doc).items()):
        r.header(phase_metric, "gauge", "repro phase wall time in seconds")
        r.sample(phase_metric, {"phase": path}, seconds)
    return r.text()
