"""Pre-registration of the pipeline's standard instruments.

A run that never exercises a stage (e.g. ``table2`` maps only the
Original version, so clustering/balancing never execute) would otherwise
produce a manifest with those series simply absent — indistinguishable
from "the stage ran and recorded nothing".  Pre-registering the known
instruments at zero (the usual Prometheus client-library convention)
makes every manifest carry the full set, so dashboards and
``repro metrics diff`` see explicit zeros instead of missing keys.

Stages that do run add their *labelled* series (e.g.
``clustering.merges{level=L2}``) alongside these label-less aggregates.
"""

from __future__ import annotations

__all__ = ["PIPELINE_COUNTERS", "PIPELINE_HISTOGRAMS", "declare_pipeline_metrics"]

#: Counters any full pipeline run may emit, in pipeline order.
PIPELINE_COUNTERS = (
    "clustering.merges",
    "clustering.splits",
    "balancing.moves",
    "balancing.splits",
    "scheduling.groups",
    "scheduling.forced",
    "compiler.sync_directives",
    "cache.writebacks",
    "disk.reads",
    "disk.writes",
    "simulator.simulations",
    "exec.tasks.submitted",
    "exec.tasks.completed",
    "exec.retries",
    "exec.timeouts",
    "exec.tasks.failed",
    "exec.store.hits",
    "exec.store.misses",
    "exec.store.writes",
    "exec.store.touches",
    "exec.store.corrupt",
    "exec.store.invalidated",
    "exec.store.evictions",
)

#: Histograms any full pipeline run may emit.
PIPELINE_HISTOGRAMS = ("balancing.imbalance",)


def declare_pipeline_metrics(registry) -> None:
    """Create the standard pipeline instruments (at zero) in ``registry``."""
    if not registry.enabled:
        return
    for name in PIPELINE_COUNTERS:
        registry.counter(name)
    for name in PIPELINE_HISTOGRAMS:
        registry.histogram(name)
