"""Structured run manifests: one JSON document per telemetry-enabled run.

A manifest freezes everything needed to interpret (and later diff) a
run: the config fingerprint (shared with the trace artifacts), git
commit, seed and library versions, every metric in the registry, the
phase-timing tree, and the machine-readable ``summary`` of each
:class:`~repro.experiments.report.ExperimentReport` produced — so a
figure/table run's numbers are consumable without scraping rendered
tables.

Validation is hand-rolled (:func:`validate_manifest`) against the
layout below, keeping the repo dependency-free; CI validates every
smoke-run manifest with it.
"""

from __future__ import annotations

import json
import pathlib
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.telemetry.registry import MetricsRegistry, NullRegistry

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "build_manifest",
    "save_manifest",
    "load_manifest",
    "validate_manifest",
    "ManifestDiff",
    "diff_manifests",
]

#: Bump when the manifest layout changes; readers reject newer files.
MANIFEST_SCHEMA_VERSION = 1

_RECORD = "repro-run-manifest"


def _git_commit() -> str | None:
    """Current commit hash, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=pathlib.Path(__file__).parent,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def _versions() -> dict[str, str]:
    from repro import __version__

    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        numpy_version = "unavailable"
    return {
        "repro": __version__,
        "python": platform.python_version(),
        "numpy": numpy_version,
    }


def build_manifest(
    registry: MetricsRegistry | NullRegistry,
    *,
    config=None,
    command: str | None = None,
    argv: list[str] | None = None,
    reports: Iterable[Any] = (),
    meta: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the manifest document for one run.

    ``config`` is a :class:`~repro.experiments.config.SystemConfig`
    (fingerprinted with the same serialisation the trace artifacts use);
    ``reports`` are :class:`~repro.experiments.report.ExperimentReport`
    objects whose ``summary``/``notes`` are embedded.
    """
    fingerprint = None
    seed = None
    if config is not None:
        from repro.util.fingerprint import config_fingerprint

        fingerprint = config_fingerprint(config)
        seed = config.seed
    doc: dict[str, Any] = {
        "record": _RECORD,
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "created_unix": time.time(),
        "command": command,
        "argv": list(argv) if argv is not None else None,
        "git_commit": _git_commit(),
        "versions": _versions(),
        "seed": seed,
        "config": fingerprint,
        "phases": (
            registry.profiler.as_dict() if registry.profiler is not None else []
        ),
        "metrics": registry.as_dict(),
        "reports": [
            {
                "experiment_id": r.experiment_id,
                "title": r.title,
                "summary": dict(r.summary),
                "notes": list(r.notes),
            }
            for r in reports
        ],
        "meta": dict(meta or {}),
    }
    return doc


def save_manifest(path: str | pathlib.Path, doc: dict[str, Any]) -> None:
    pathlib.Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def load_manifest(path: str | pathlib.Path) -> dict[str, Any]:
    """Load and validate a manifest written by :func:`save_manifest`."""
    try:
        doc = json.loads(pathlib.Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from None
    problems = validate_manifest(doc)
    if problems:
        raise ValueError(f"{path}: invalid manifest: " + "; ".join(problems))
    return doc


def _check_metric_entries(
    entries: Any, kind: str, value_keys: tuple[str, ...], problems: list[str]
) -> None:
    if not isinstance(entries, list):
        problems.append(f"metrics.{kind} must be a list")
        return
    for i, entry in enumerate(entries):
        where = f"metrics.{kind}[{i}]"
        if not isinstance(entry, dict):
            problems.append(f"{where} must be an object")
            continue
        if not isinstance(entry.get("name"), str):
            problems.append(f"{where}.name must be a string")
        if not isinstance(entry.get("labels"), dict):
            problems.append(f"{where}.labels must be an object")
        for key in value_keys:
            if not isinstance(entry.get(key), (int, float)):
                problems.append(f"{where}.{key} must be a number")


def _check_phase_nodes(nodes: Any, where: str, problems: list[str]) -> None:
    if not isinstance(nodes, list):
        problems.append(f"{where} must be a list")
        return
    for i, node in enumerate(nodes):
        here = f"{where}[{i}]"
        if not isinstance(node, dict):
            problems.append(f"{here} must be an object")
            continue
        if not isinstance(node.get("name"), str):
            problems.append(f"{here}.name must be a string")
        if not isinstance(node.get("elapsed_s"), (int, float)):
            problems.append(f"{here}.elapsed_s must be a number")
        if not isinstance(node.get("calls", 1), int):
            problems.append(f"{here}.calls must be an integer")
        if "children" in node:
            _check_phase_nodes(node["children"], f"{here}.children", problems)


def validate_manifest(doc: Any) -> list[str]:
    """Schema-check a manifest; returns a list of problems (empty = valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["manifest must be a JSON object"]
    if doc.get("record") != _RECORD:
        problems.append(f"record must be {_RECORD!r}")
    version = doc.get("schema_version")
    if not isinstance(version, int):
        problems.append("schema_version must be an integer")
    elif version > MANIFEST_SCHEMA_VERSION:
        problems.append(
            f"schema v{version} is newer than this build's "
            f"v{MANIFEST_SCHEMA_VERSION}"
        )
    versions = doc.get("versions")
    if not isinstance(versions, dict) or not all(
        isinstance(v, str) for v in versions.values()
    ):
        problems.append("versions must be an object of strings")
    if doc.get("config") is not None and not isinstance(doc["config"], dict):
        problems.append("config must be an object or null")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("metrics must be an object")
    else:
        _check_metric_entries(
            metrics.get("counters"), "counters", ("value",), problems
        )
        _check_metric_entries(metrics.get("gauges"), "gauges", ("value",), problems)
        _check_metric_entries(
            metrics.get("histograms"), "histograms", ("count", "sum"), problems
        )
    _check_phase_nodes(doc.get("phases"), "phases", problems)
    reports = doc.get("reports")
    if not isinstance(reports, list):
        problems.append("reports must be a list")
    else:
        for i, r in enumerate(reports):
            if not isinstance(r, dict) or not isinstance(
                r.get("experiment_id"), str
            ):
                problems.append(f"reports[{i}] must have a string experiment_id")
            elif not isinstance(r.get("summary"), dict):
                problems.append(f"reports[{i}].summary must be an object")
    return problems


# -- diffs --------------------------------------------------------------------------


def _metric_map(doc: dict, kind: str) -> dict[tuple, dict]:
    out = {}
    for entry in doc.get("metrics", {}).get(kind, []):
        key = (entry["name"], tuple(sorted(entry.get("labels", {}).items())))
        out[key] = entry
    return out


def _flatten_phases(doc: dict) -> dict[str, float]:
    out: dict[str, float] = {}

    def walk(node: dict, prefix: str) -> None:
        path = f"{prefix}/{node['name']}" if prefix else node["name"]
        out[path] = out.get(path, 0.0) + float(node["elapsed_s"])
        for ch in node.get("children", []):
            walk(ch, path)

    for root in doc.get("phases", []):
        walk(root, "")
    return out


def _label_str(labels: tuple) -> str:
    return ",".join(f"{k}={v}" for k, v in labels) if labels else "-"


@dataclass
class ManifestDiff:
    """Structured comparison of two run manifests."""

    #: (name, labels, a value, b value) for counters/gauges that differ.
    changed_values: list[tuple[str, tuple, float, float]] = field(
        default_factory=list
    )
    #: metric keys present in exactly one manifest.
    only_a: list[tuple[str, tuple]] = field(default_factory=list)
    only_b: list[tuple[str, tuple]] = field(default_factory=list)
    #: (phase path, a seconds, b seconds) for every phase in either run.
    phases: list[tuple[str, float, float]] = field(default_factory=list)
    #: config keys whose fingerprints differ: (key, a, b).
    config_changes: list[tuple[str, Any, Any]] = field(default_factory=list)

    def is_empty(self) -> bool:
        return not (
            self.changed_values or self.only_a or self.only_b or self.config_changes
        )

    def render(self) -> str:
        from repro.util.tables import format_table

        parts: list[str] = []
        if self.is_empty():
            # Wall-clock phase timings always drift run to run; lead with
            # the signal that the *metrics* match before showing them.
            parts.append("manifests are metric-identical")
        if self.config_changes:
            parts.append(
                format_table(
                    ["config key", "a", "b"],
                    [[k, repr(a), repr(b)] for k, a, b in self.config_changes],
                    title="Manifest diff: config changes",
                )
            )
        rows = [
            [
                name,
                _label_str(labels),
                f"{va:g}",
                f"{vb:g}",
                f"{vb - va:+g}",
            ]
            for name, labels, va, vb in self.changed_values
        ]
        if rows:
            parts.append(
                format_table(
                    ["metric", "labels", "a", "b", "delta"],
                    rows,
                    title="Manifest diff: changed metrics",
                )
            )
        for title, keys in (("only in a", self.only_a), ("only in b", self.only_b)):
            if keys:
                parts.append(
                    f"  {title}: "
                    + ", ".join(
                        f"{n}{{{_label_str(l)}}}" if l else n for n, l in keys
                    )
                )
        if self.phases:
            rows = [
                [path, f"{a:.3f}", f"{b:.3f}", f"{b - a:+.3f}"]
                for path, a, b in self.phases
            ]
            parts.append(
                format_table(
                    ["phase", "a (s)", "b (s)", "delta (s)"],
                    rows,
                    title="Manifest diff: phase timings",
                )
            )
        return "\n".join(parts)


def diff_manifests(a: dict[str, Any], b: dict[str, Any]) -> ManifestDiff:
    """Compare two manifests: metric deltas, phase timings, config drift."""
    for doc, label in ((a, "a"), (b, "b")):
        problems = validate_manifest(doc)
        if problems:
            raise ValueError(f"manifest {label} is invalid: " + "; ".join(problems))
    diff = ManifestDiff()

    cfg_a = a.get("config") or {}
    cfg_b = b.get("config") or {}
    for key in sorted(set(cfg_a) | set(cfg_b)):
        if cfg_a.get(key) != cfg_b.get(key):
            diff.config_changes.append((key, cfg_a.get(key), cfg_b.get(key)))

    for kind in ("counters", "gauges"):
        ma = _metric_map(a, kind)
        mb = _metric_map(b, kind)
        for key in sorted(set(ma) | set(mb)):
            if key in ma and key in mb:
                va, vb = ma[key]["value"], mb[key]["value"]
                if va != vb:
                    diff.changed_values.append((key[0], key[1], va, vb))
            elif key in ma:
                diff.only_a.append(key)
            else:
                diff.only_b.append(key)

    pa = _flatten_phases(a)
    pb = _flatten_phases(b)
    for path in sorted(set(pa) | set(pb)):
        diff.phases.append((path, pa.get(path, 0.0), pb.get(path, 0.0)))
    return diff
