"""Phase profiler: a nesting context-manager/decorator wall-clock timer.

``phase("mapping")`` times a pipeline stage.  Nested phases form a tree
(chunking → tagging → affinity graph → clustering → balancing →
scheduling → simulation), recorded by the active registry's
:class:`PhaseProfiler` and exported into the run manifest.

The timer itself always runs — callers like the mappers read
``.elapsed`` to populate ``mapping_time_s`` regardless of telemetry —
but tree bookkeeping and histogram recording only happen when the
active registry is enabled, so the disabled cost is two
``perf_counter`` calls per phase (phases wrap whole pipeline stages,
never per-access work).
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.tracer import get_tracer
from repro.obs.tracer import span as _obs_span
from repro.telemetry.registry import get_registry

__all__ = ["PhaseRecord", "PhaseProfiler", "phase"]


@dataclass
class PhaseRecord:
    """One timed phase: name, duration, nested sub-phases."""

    name: str
    elapsed_s: float = 0.0
    calls: int = 1
    children: list["PhaseRecord"] = field(default_factory=list)

    def child(self, name: str) -> "PhaseRecord | None":
        for ch in self.children:
            if ch.name == name:
                return ch
        return None

    def self_s(self) -> float:
        """Time not attributed to any child phase."""
        return max(0.0, self.elapsed_s - sum(c.elapsed_s for c in self.children))

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "elapsed_s": self.elapsed_s,
            "calls": self.calls,
        }
        if self.children:
            out["children"] = [c.as_dict() for c in self.children]
        return out

    @staticmethod
    def from_dict(d: dict[str, Any]) -> "PhaseRecord":
        return PhaseRecord(
            name=d["name"],
            elapsed_s=float(d["elapsed_s"]),
            calls=int(d.get("calls", 1)),
            children=[PhaseRecord.from_dict(c) for c in d.get("children", [])],
        )


class PhaseProfiler:
    """Accumulates :class:`PhaseRecord` trees across a run.

    Repeated phases with the same name under the same parent accumulate
    into one record (``calls`` counts the invocations) — a suite run
    times eight workloads' mapping phases as one "mapping" node, which
    is the aggregate view the manifest wants.
    """

    def __init__(self):
        self.roots: list[PhaseRecord] = []
        self._stack: list[PhaseRecord] = []

    def _enter(self, name: str) -> PhaseRecord:
        siblings = self._stack[-1].children if self._stack else self.roots
        for rec in siblings:
            if rec.name == name:
                rec.calls += 1
                break
        else:
            rec = PhaseRecord(name, calls=1)
            siblings.append(rec)
        self._stack.append(rec)
        return rec

    def _exit(self, rec: PhaseRecord, elapsed_s: float) -> None:
        if self._stack and self._stack[-1] is rec:
            self._stack.pop()
        rec.elapsed_s += elapsed_s

    def path(self) -> str:
        """The currently open phase path, e.g. ``"mapping/clustering"``."""
        return "/".join(r.name for r in self._stack)

    def flatten(self) -> dict[str, float]:
        """``{"mapping/clustering": seconds, ...}`` for every tree node."""
        out: dict[str, float] = {}

        def walk(rec: PhaseRecord, prefix: str) -> None:
            path = f"{prefix}/{rec.name}" if prefix else rec.name
            out[path] = out.get(path, 0.0) + rec.elapsed_s
            for ch in rec.children:
                walk(ch, path)

        for root in self.roots:
            walk(root, "")
        return out

    def total_s(self) -> float:
        return sum(r.elapsed_s for r in self.roots)

    def as_dict(self) -> list[dict[str, Any]]:
        return [r.as_dict() for r in self.roots]

    def __repr__(self) -> str:
        return f"PhaseProfiler({len(self.roots)} roots, open={self.path()!r})"


class phase:
    """Time a pipeline stage; context manager and decorator.

    As a context manager::

        with phase("mapping") as p:
            ...
        mapping_time_s = p.elapsed

    As a decorator::

        @phase("simulate")
        def simulate(...): ...

    ``elapsed`` is always measured; the phase tree and the
    ``phase.duration_seconds`` histogram are only recorded when the
    active registry is enabled.  When the active *tracer*
    (:func:`repro.obs.tracer.get_tracer`) is enabled, every phase also
    opens a span — independently of the registry — so one traced
    request's tree reaches down into mapper/simulator phases with no
    extra instrumentation at the phase sites.
    """

    __slots__ = ("name", "elapsed", "_start", "_record", "_profiler", "_span")

    def __init__(self, name: str):
        self.name = name
        self.elapsed = 0.0
        self._start = 0.0
        self._record: PhaseRecord | None = None
        self._profiler: PhaseProfiler | None = None
        self._span: _obs_span | None = None

    def __enter__(self) -> "phase":
        registry = get_registry()
        if registry.enabled and registry.profiler is not None:
            self._profiler = registry.profiler
            self._record = self._profiler._enter(self.name)
        if get_tracer().enabled:
            self._span = _obs_span(self.name)
            self._span.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = time.perf_counter() - self._start
        if self._span is not None:
            self._span.__exit__(exc_type, exc, tb)
            self._span = None
        if self._record is not None and self._profiler is not None:
            self._profiler._exit(self._record, self.elapsed)
            path = self._profiler.path()
            full = f"{path}/{self.name}" if path else self.name
            get_registry().histogram(
                "phase.duration_seconds", phase=full
            ).observe(self.elapsed)
            self._record = None
            self._profiler = None

    def __call__(self, fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with phase(self.name):
                return fn(*args, **kwargs)

        return wrapper
