"""The pipeline-wide metrics registry.

Three instrument kinds cover what the mapper and simulator need to
report (the quantities the paper's evaluation aggregates — merge/evict
counts, affinity-graph sizes, load-balance spread, per-level cache
counters):

* :class:`Counter` — monotonically increasing event counts
  (``clustering.merges``, ``balancing.moves``);
* :class:`Gauge` — last-value measurements (``graph.nodes``);
* :class:`Histogram` — value distributions summarised as
  count/sum/min/max (``balancing.imbalance``, phase durations).

Instruments have hierarchical dotted names plus optional labels, e.g.
``clustering.merges{level=L2}``; ``registry.counter(name, **labels)``
is get-or-create, so instrumentation sites never need to coordinate.

Disabled state: :data:`NULL_REGISTRY` hands out shared no-op
instruments whose methods do nothing, so instrumented code costs one
dict lookup and a no-op call per site when telemetry is off.  The
*active* registry is module-global (:func:`get_registry` /
:func:`set_registry` / :func:`use_registry`) and defaults to the null
registry; everything here is single-threaded by design, like the rest
of the simulator.
"""

from __future__ import annotations

import re
import threading
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "use_registry",
    "thread_registry",
]

#: Hierarchical instrument names: dotted lowercase words.
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"bad metric name {name!r}: use dotted lowercase words "
            "(e.g. 'clustering.merges')"
        )
    return name


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Gauge:
    """A last-value measurement."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.value})"


class Histogram:
    """A streaming distribution summary: count, sum, min, max.

    Deliberately bucket-free — the registry feeds single-process run
    manifests, not a scrape endpoint, and count/sum/min/max answer the
    questions the reports ask (totals, averages, spread) without
    per-observation storage.
    """

    __slots__ = ("count", "sum", "min", "max")

    def __init__(self):
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge_summary(
        self, count: int, total: float, minimum: float, maximum: float
    ) -> None:
        """Fold another histogram's count/sum/min/max into this one.

        Count/sum/min/max compose exactly under merging, which is what
        lets process-pool workers ship their registry snapshots back to
        the parent (:meth:`MetricsRegistry.merge_snapshot`).
        """
        if not count:
            return
        self.count += count
        self.sum += total
        if minimum < self.min:
            self.min = minimum
        if maximum > self.max:
            self.max = maximum

    def as_dict(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, sum={self.sum})"


class _NullInstrument:
    """Shared do-nothing stand-in for every instrument kind."""

    __slots__ = ()
    value = 0
    count = 0
    sum = 0.0
    min = 0.0
    max = 0.0
    mean = 0.0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def as_dict(self) -> dict[str, float]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()

#: Instrument key: (name, sorted label items).
_Key = tuple


def _key(name: str, labels: dict[str, Any]) -> _Key:
    if not labels:
        return (name, ())
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


class MetricsRegistry:
    """Hierarchically named counters/gauges/histograms with labels.

    Also owns the run's :class:`~repro.telemetry.profiler.PhaseProfiler`
    so the phase-timing tree travels with the metrics into the manifest.
    """

    enabled = True

    def __init__(self):
        self._counters: dict[_Key, Counter] = {}
        self._gauges: dict[_Key, Gauge] = {}
        self._histograms: dict[_Key, Histogram] = {}
        self._kinds: dict[str, str] = {}
        from repro.telemetry.profiler import PhaseProfiler

        self.profiler = PhaseProfiler()

    def _claim(self, name: str, kind: str) -> None:
        """Validate a new instrument name; one name, one kind (Prometheus rule)."""
        _check_name(name)
        existing = self._kinds.setdefault(name, kind)
        if existing != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {existing}, "
                f"cannot reuse as a {kind}"
            )

    # -- instrument access --------------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        key = _key(name, labels)
        inst = self._counters.get(key)
        if inst is None:
            self._claim(name, "counter")
            inst = self._counters[key] = Counter()
        return inst

    def gauge(self, name: str, **labels) -> Gauge:
        key = _key(name, labels)
        inst = self._gauges.get(key)
        if inst is None:
            self._claim(name, "gauge")
            inst = self._gauges[key] = Gauge()
        return inst

    def histogram(self, name: str, **labels) -> Histogram:
        key = _key(name, labels)
        inst = self._histograms.get(key)
        if inst is None:
            self._claim(name, "histogram")
            inst = self._histograms[key] = Histogram()
        return inst

    # -- introspection ------------------------------------------------------------

    def counters(self) -> Iterator[tuple[str, dict[str, str], Counter]]:
        for (name, labels), inst in sorted(self._counters.items()):
            yield name, dict(labels), inst

    def gauges(self) -> Iterator[tuple[str, dict[str, str], Gauge]]:
        for (name, labels), inst in sorted(self._gauges.items()):
            yield name, dict(labels), inst

    def histograms(self) -> Iterator[tuple[str, dict[str, str], Histogram]]:
        for (name, labels), inst in sorted(self._histograms.items()):
            yield name, dict(labels), inst

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def merge_snapshot(self, snapshot: dict[str, list[dict[str, Any]]]) -> None:
        """Fold an :meth:`as_dict` snapshot into this registry.

        Counters and histogram summaries add; gauges take the
        snapshot's value (last write wins — merge snapshots in a
        deterministic order).  This is how per-task registries from
        process-pool workers flow back into the run's registry, so a
        parallel run's manifest carries the same counter values a
        serial run would.
        """
        for entry in snapshot.get("counters", []):
            # inc(0) still materialises the series: a zero-valued counter
            # a serial run would declare must exist after a merge too.
            self.counter(entry["name"], **entry.get("labels", {})).inc(
                entry["value"]
            )
        for entry in snapshot.get("gauges", []):
            self.gauge(entry["name"], **entry.get("labels", {})).set(entry["value"])
        for entry in snapshot.get("histograms", []):
            self.histogram(entry["name"], **entry.get("labels", {})).merge_summary(
                entry.get("count", 0),
                entry.get("sum", 0.0),
                entry.get("min", float("inf")),
                entry.get("max", float("-inf")),
            )

    def as_dict(self) -> dict[str, list[dict[str, Any]]]:
        """JSON-safe dump of every instrument (manifest ``metrics`` section)."""
        return {
            "counters": [
                {"name": n, "labels": l, "value": c.value}
                for n, l, c in self.counters()
            ],
            "gauges": [
                {"name": n, "labels": l, "value": g.value}
                for n, l, g in self.gauges()
            ],
            "histograms": [
                {"name": n, "labels": l, **h.as_dict()}
                for n, l, h in self.histograms()
            ],
        }

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, {len(self._histograms)} histograms)"
        )


class NullRegistry:
    """The disabled registry: every instrument is a shared no-op."""

    enabled = False
    profiler = None

    def counter(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def counters(self):
        return iter(())

    def gauges(self):
        return iter(())

    def histograms(self):
        return iter(())

    def __len__(self) -> int:
        return 0

    def as_dict(self) -> dict[str, list]:
        return {"counters": [], "gauges": [], "histograms": []}

    def __repr__(self) -> str:
        return "NullRegistry()"


#: The process-wide disabled registry (the default active registry).
NULL_REGISTRY = NullRegistry()

_active: MetricsRegistry | NullRegistry = NULL_REGISTRY

#: Per-thread override of the process-global active registry, so a
#: worker thread can collect into a private registry (run_payload's
#: snapshot repatriation) without hijacking what every other thread —
#: e.g. the serve event loop rendering /metrics — sees.
_LOCAL = threading.local()


def get_registry() -> MetricsRegistry | NullRegistry:
    """The active registry instrumentation sites record into."""
    override = getattr(_LOCAL, "registry", None)
    return _active if override is None else override


def set_registry(
    registry: MetricsRegistry | NullRegistry | None,
) -> MetricsRegistry | NullRegistry:
    """Install the active registry (``None`` restores the null registry).

    Returns the previously active registry so callers can restore it.
    """
    global _active
    previous = _active
    _active = registry if registry is not None else NULL_REGISTRY
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry | NullRegistry):
    """Scope ``registry`` as the active one, restoring the previous on exit."""
    global _active
    previous = _active
    _active = registry
    try:
        yield registry
    finally:
        _active = previous


@contextmanager
def thread_registry(registry: MetricsRegistry | NullRegistry):
    """Scope ``registry`` as active *for the current thread only*.

    Other threads keep seeing the process-global registry.  This is the
    isolation :func:`repro.exec.executor.run_payload` needs when it runs
    in a backend thread of a long-lived server: its private collection
    registry must not leak into concurrently served ``/metrics`` reads.
    """
    previous = getattr(_LOCAL, "registry", None)
    _LOCAL.registry = registry
    try:
        yield registry
    finally:
        _LOCAL.registry = previous
