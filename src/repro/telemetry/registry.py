"""The pipeline-wide metrics registry.

Three instrument kinds cover what the mapper and simulator need to
report (the quantities the paper's evaluation aggregates — merge/evict
counts, affinity-graph sizes, load-balance spread, per-level cache
counters):

* :class:`Counter` — monotonically increasing event counts
  (``clustering.merges``, ``balancing.moves``);
* :class:`Gauge` — last-value measurements (``graph.nodes``);
* :class:`Histogram` — value distributions summarised as
  count/sum/min/max (``balancing.imbalance``, phase durations).

Instruments have hierarchical dotted names plus optional labels, e.g.
``clustering.merges{level=L2}``; ``registry.counter(name, **labels)``
is get-or-create, so instrumentation sites never need to coordinate.

Disabled state: :data:`NULL_REGISTRY` hands out shared no-op
instruments whose methods do nothing, so instrumented code costs one
dict lookup and a no-op call per site when telemetry is off.  The
*active* registry is module-global (:func:`get_registry` /
:func:`set_registry` / :func:`use_registry`) and defaults to the null
registry; everything here is single-threaded by design, like the rest
of the simulator.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Iterator, Mapping

__all__ = [
    "BUCKET_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "label_snapshot",
    "set_registry",
    "use_registry",
    "thread_registry",
]

#: Hierarchical instrument names: dotted lowercase words.
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"bad metric name {name!r}: use dotted lowercase words "
            "(e.g. 'clustering.merges')"
        )
    return name


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Gauge:
    """A last-value measurement."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.value})"


#: Fixed log-spaced bucket upper bounds shared by every histogram:
#: four buckets per decade from 1e-9 to 1e9 (10 ** (e / 4) for
#: e in -36..36), plus one implicit overflow bucket past the last
#: bound.  Global constants are what make bucket counts *compose*:
#: any two histograms — a worker's and the parent's, this run's and
#: last run's — share bucket edges, so merging is element-wise
#: addition (:meth:`Histogram.merge_summary`).  The span covers
#: sub-nanosecond phase timings through multi-gigabyte byte counts.
BUCKET_BOUNDS: tuple[float, ...] = tuple(10.0 ** (e / 4.0) for e in range(-36, 37))

#: Total bucket count including the overflow bucket.
_NBUCKETS = len(BUCKET_BOUNDS) + 1


class Histogram:
    """A streaming distribution summary: count/sum/min/max + buckets.

    Fixed log-spaced bucket counts (:data:`BUCKET_BOUNDS`) back the
    :meth:`quantile` estimates the SLO reports need (p50/p95/p99 of
    per-stage latencies) while staying exactly composable under
    :meth:`merge_summary` — no per-observation storage, and worker
    snapshots still fold into the parent registry by addition.
    """

    __slots__ = ("count", "sum", "min", "max", "_buckets")

    def __init__(self):
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._buckets = [0] * _NBUCKETS

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._buckets[bisect_left(BUCKET_BOUNDS, value)] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def bucket_counts(self) -> list[int]:
        """Per-bucket observation counts (last entry is the overflow)."""
        return list(self._buckets)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 < q <= 1``) from the buckets.

        Linear interpolation inside the holding bucket, clamped to the
        exact observed ``[min, max]`` so single-observation histograms
        and tail quantiles never report a value outside the data.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile q must be in (0, 1], got {q}")
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        for idx, bucket_count in enumerate(self._buckets):
            if not bucket_count:
                continue
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target:
                lo = BUCKET_BOUNDS[idx - 1] if idx > 0 else 0.0
                hi = (
                    BUCKET_BOUNDS[idx]
                    if idx < len(BUCKET_BOUNDS)
                    else max(self.max, lo)
                )
                fraction = (target - previous) / bucket_count
                value = lo + (hi - lo) * fraction
                return min(max(value, self.min), self.max)
        return self.max

    def merge_summary(
        self,
        count: int,
        total: float,
        minimum: float,
        maximum: float,
        buckets: Mapping[str, int] | None = None,
    ) -> None:
        """Fold another histogram's summary into this one.

        Count/sum/min/max compose exactly, and — because every
        histogram shares :data:`BUCKET_BOUNDS` — so do bucket counts,
        which is what lets process-pool workers ship their registry
        snapshots back to the parent
        (:meth:`MetricsRegistry.merge_snapshot`).  ``buckets`` is the
        sparse ``{bucket_index: count}`` mapping :meth:`as_dict`
        emits; a summary without one (a pre-bucket snapshot) degrades
        gracefully by crediting all observations to the mean's bucket.
        """
        if not count:
            return
        self.count += count
        self.sum += total
        if minimum < self.min:
            self.min = minimum
        if maximum > self.max:
            self.max = maximum
        if buckets:
            for raw_idx, bucket_count in buckets.items():
                idx = int(raw_idx)
                if not 0 <= idx < _NBUCKETS:
                    raise ValueError(f"bucket index {idx} out of range")
                self._buckets[idx] += int(bucket_count)
        else:
            mean = total / count
            self._buckets[bisect_left(BUCKET_BOUNDS, mean)] += count

    def as_dict(self) -> dict[str, Any]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            # Sparse: only occupied buckets, keyed by bucket index (JSON
            # object keys are strings).  merge_summary accepts this form.
            "buckets": {
                str(idx): bucket_count
                for idx, bucket_count in enumerate(self._buckets)
                if bucket_count
            },
        }

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, sum={self.sum})"


class _NullInstrument:
    """Shared do-nothing stand-in for every instrument kind."""

    __slots__ = ()
    value = 0
    count = 0
    sum = 0.0
    min = 0.0
    max = 0.0
    mean = 0.0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def as_dict(self) -> dict[str, float]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()

#: Instrument key: (name, sorted label items).
_Key = tuple


def _key(name: str, labels: dict[str, Any]) -> _Key:
    if not labels:
        return (name, ())
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


class MetricsRegistry:
    """Hierarchically named counters/gauges/histograms with labels.

    Also owns the run's :class:`~repro.telemetry.profiler.PhaseProfiler`
    so the phase-timing tree travels with the metrics into the manifest.
    """

    enabled = True

    def __init__(self):
        self._counters: dict[_Key, Counter] = {}
        self._gauges: dict[_Key, Gauge] = {}
        self._histograms: dict[_Key, Histogram] = {}
        self._kinds: dict[str, str] = {}
        from repro.telemetry.profiler import PhaseProfiler

        self.profiler = PhaseProfiler()

    def _claim(self, name: str, kind: str) -> None:
        """Validate a new instrument name; one name, one kind (Prometheus rule)."""
        _check_name(name)
        existing = self._kinds.setdefault(name, kind)
        if existing != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {existing}, "
                f"cannot reuse as a {kind}"
            )

    # -- instrument access --------------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        key = _key(name, labels)
        inst = self._counters.get(key)
        if inst is None:
            self._claim(name, "counter")
            inst = self._counters[key] = Counter()
        return inst

    def gauge(self, name: str, **labels) -> Gauge:
        key = _key(name, labels)
        inst = self._gauges.get(key)
        if inst is None:
            self._claim(name, "gauge")
            inst = self._gauges[key] = Gauge()
        return inst

    def histogram(self, name: str, **labels) -> Histogram:
        key = _key(name, labels)
        inst = self._histograms.get(key)
        if inst is None:
            self._claim(name, "histogram")
            inst = self._histograms[key] = Histogram()
        return inst

    # -- introspection ------------------------------------------------------------

    def counters(self) -> Iterator[tuple[str, dict[str, str], Counter]]:
        for (name, labels), inst in sorted(self._counters.items()):
            yield name, dict(labels), inst

    def gauges(self) -> Iterator[tuple[str, dict[str, str], Gauge]]:
        for (name, labels), inst in sorted(self._gauges.items()):
            yield name, dict(labels), inst

    def histograms(self) -> Iterator[tuple[str, dict[str, str], Histogram]]:
        for (name, labels), inst in sorted(self._histograms.items()):
            yield name, dict(labels), inst

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def merge_snapshot(self, snapshot: dict[str, list[dict[str, Any]]]) -> None:
        """Fold an :meth:`as_dict` snapshot into this registry.

        Counters and histogram summaries add; gauges take the
        snapshot's value (last write wins — merge snapshots in a
        deterministic order).  This is how per-task registries from
        process-pool workers flow back into the run's registry, so a
        parallel run's manifest carries the same counter values a
        serial run would.
        """
        for entry in snapshot.get("counters", []):
            # inc(0) still materialises the series: a zero-valued counter
            # a serial run would declare must exist after a merge too.
            self.counter(entry["name"], **entry.get("labels", {})).inc(
                entry["value"]
            )
        for entry in snapshot.get("gauges", []):
            self.gauge(entry["name"], **entry.get("labels", {})).set(entry["value"])
        for entry in snapshot.get("histograms", []):
            self.histogram(entry["name"], **entry.get("labels", {})).merge_summary(
                entry.get("count", 0),
                entry.get("sum", 0.0),
                entry.get("min", float("inf")),
                entry.get("max", float("-inf")),
                entry.get("buckets"),
            )

    def as_dict(self) -> dict[str, list[dict[str, Any]]]:
        """JSON-safe dump of every instrument (manifest ``metrics`` section)."""
        return {
            "counters": [
                {"name": n, "labels": l, "value": c.value}
                for n, l, c in self.counters()
            ],
            "gauges": [
                {"name": n, "labels": l, "value": g.value}
                for n, l, g in self.gauges()
            ],
            "histograms": [
                {"name": n, "labels": l, **h.as_dict()}
                for n, l, h in self.histograms()
            ],
        }

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, {len(self._histograms)} histograms)"
        )


def label_snapshot(
    snapshot: dict[str, list[dict[str, Any]]], **labels: str
) -> dict[str, list[dict[str, Any]]]:
    """A copy of an :meth:`MetricsRegistry.as_dict` snapshot, relabelled.

    Merges ``labels`` into every entry's label set (entry-level labels
    win on collision, so a series that already carries the label keeps
    it).  This is how the shard router turns N per-worker snapshots
    into one cluster registry: label each with ``shard=<id>``, then
    :meth:`~MetricsRegistry.merge_snapshot` them all — same-named
    series stay distinct per shard, histograms still compose.
    """
    str_labels = {k: str(v) for k, v in labels.items()}
    return {
        section: [
            {**entry, "labels": {**str_labels, **entry.get("labels", {})}}
            for entry in entries
        ]
        for section, entries in snapshot.items()
    }


class NullRegistry:
    """The disabled registry: every instrument is a shared no-op."""

    enabled = False
    profiler = None

    def counter(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def counters(self):
        return iter(())

    def gauges(self):
        return iter(())

    def histograms(self):
        return iter(())

    def __len__(self) -> int:
        return 0

    def as_dict(self) -> dict[str, list]:
        return {"counters": [], "gauges": [], "histograms": []}

    def __repr__(self) -> str:
        return "NullRegistry()"


#: The process-wide disabled registry (the default active registry).
NULL_REGISTRY = NullRegistry()

_active: MetricsRegistry | NullRegistry = NULL_REGISTRY

#: Per-thread override of the process-global active registry, so a
#: worker thread can collect into a private registry (run_payload's
#: snapshot repatriation) without hijacking what every other thread —
#: e.g. the serve event loop rendering /metrics — sees.
_LOCAL = threading.local()


def get_registry() -> MetricsRegistry | NullRegistry:
    """The active registry instrumentation sites record into."""
    override = getattr(_LOCAL, "registry", None)
    return _active if override is None else override


def set_registry(
    registry: MetricsRegistry | NullRegistry | None,
) -> MetricsRegistry | NullRegistry:
    """Install the active registry (``None`` restores the null registry).

    Returns the previously active registry so callers can restore it.
    """
    global _active
    previous = _active
    _active = registry if registry is not None else NULL_REGISTRY
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry | NullRegistry):
    """Scope ``registry`` as the active one, restoring the previous on exit."""
    global _active
    previous = _active
    _active = registry
    try:
        yield registry
    finally:
        _active = previous


@contextmanager
def thread_registry(registry: MetricsRegistry | NullRegistry):
    """Scope ``registry`` as active *for the current thread only*.

    Other threads keep seeing the process-global registry.  This is the
    isolation :func:`repro.exec.executor.run_payload` needs when it runs
    in a backend thread of a long-lived server: its private collection
    registry must not leak into concurrently served ``/metrics`` reads.
    """
    previous = getattr(_LOCAL, "registry", None)
    _LOCAL.registry = registry
    try:
        yield registry
    finally:
        _LOCAL.registry = previous
