"""repro — storage-cache-hierarchy-aware computation mapping.

A from-scratch reproduction of *"Computation Mapping for Multi-Level
Storage Cache Hierarchies"* (Kandemir, Muralidhara, Karakoy, Son —
HPDC 2010): a compiler-directed scheme that distributes loop iterations
across the client nodes of a parallel system so the shared storage
cache hierarchy (compute-node, I/O-node and storage-node caches) is
used constructively.

Quickstart::

    from repro import (
        figure6_workload, figure7_hierarchy, InterProcessorMapper,
    )
    nest, data = figure6_workload(d=16)
    hierarchy = figure7_hierarchy()
    mapping = InterProcessorMapper(schedule=True).map(nest, data, hierarchy)
    print(mapping.iteration_counts())

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-versus-measured evaluation.
"""

from repro.analysis import (
    mapping_affinity_quality,
    mapping_footprints,
    reuse_distance_profile,
    sharing_matrix,
)
from repro.compiler import CompiledProgram, compile_nest
from repro.core import (
    InterProcessorMapper,
    IntraProcessorMapper,
    Mapping,
    OriginalMapper,
    combine_nests,
    form_iteration_chunks,
)
from repro.experiments.config import DEFAULT_CONFIG, SystemConfig, scaled_config
from repro.hierarchy import (
    CacheHierarchy,
    hierarchy_from_spec,
    three_level_hierarchy,
    uniform_hierarchy,
)
from repro.polyhedral import (
    AffineExpr,
    ArrayRef,
    DataSpace,
    DiskArray,
    IterationSpace,
    LoopNest,
)
from repro.simulator import LatencyModel, run_experiment, simulate
from repro.telemetry import (
    MetricsRegistry,
    build_manifest,
    get_registry,
    load_manifest,
    phase,
    save_manifest,
    use_registry,
)
from repro.trace import (
    MemoryRecorder,
    NullRecorder,
    TraceArtifact,
    diff_artifacts,
    diff_traces,
    load_artifact,
    record,
    replay,
    save_artifact,
)
from repro.workloads import SUITE, figure6_workload, figure7_hierarchy, get_workload

__version__ = "1.0.0"

__all__ = [
    "InterProcessorMapper",
    "IntraProcessorMapper",
    "OriginalMapper",
    "Mapping",
    "combine_nests",
    "form_iteration_chunks",
    "SystemConfig",
    "DEFAULT_CONFIG",
    "scaled_config",
    "CacheHierarchy",
    "three_level_hierarchy",
    "uniform_hierarchy",
    "hierarchy_from_spec",
    "CompiledProgram",
    "compile_nest",
    "reuse_distance_profile",
    "sharing_matrix",
    "mapping_footprints",
    "mapping_affinity_quality",
    "AffineExpr",
    "ArrayRef",
    "DataSpace",
    "DiskArray",
    "IterationSpace",
    "LoopNest",
    "LatencyModel",
    "run_experiment",
    "simulate",
    "MetricsRegistry",
    "get_registry",
    "use_registry",
    "phase",
    "build_manifest",
    "save_manifest",
    "load_manifest",
    "MemoryRecorder",
    "NullRecorder",
    "TraceArtifact",
    "record",
    "replay",
    "save_artifact",
    "load_artifact",
    "diff_traces",
    "diff_artifacts",
    "SUITE",
    "get_workload",
    "figure6_workload",
    "figure7_hierarchy",
    "__version__",
]
