"""Footprints and working-set curves.

A client's *footprint* is the set of distinct data chunks it touches;
the *footprint curve* tracks how many distinct chunks a stream has
touched after each request (the cold-miss frontier).  Together with the
reuse profile these explain where each version's misses come from:
compulsory (footprint), capacity (reuse distance vs cache size) or
sharing (the sharing matrix).
"""

from __future__ import annotations

import numpy as np

from repro.core.mapping import Mapping
from repro.polyhedral.arrays import DataSpace
from repro.polyhedral.nest import LoopNest
from repro.simulator.streams import build_client_streams

__all__ = ["footprint_curve", "mapping_footprints"]


def footprint_curve(trace: np.ndarray) -> np.ndarray:
    """Distinct chunks touched after each access (vectorised).

    ``curve[i]`` = |{trace[0..i]}|; the final value is the footprint.
    """
    t = np.asarray(trace, dtype=np.int64)
    if t.ndim != 1:
        raise ValueError("trace must be a 1-D chunk-id vector")
    if len(t) == 0:
        return np.empty(0, dtype=np.int64)
    # First occurrence of each value -> +1 at that position.
    _, first_idx = np.unique(t, return_index=True)
    increments = np.zeros(len(t), dtype=np.int64)
    increments[first_idx] = 1
    return np.cumsum(increments)


def mapping_footprints(
    mapping: Mapping, nest: LoopNest, data_space: DataSpace
) -> dict[int, int]:
    """Per-client footprint sizes (distinct chunks requested).

    A hierarchy-aware mapping shrinks these: co-locating sharing
    iterations means fewer distinct chunks per client, i.e. fewer
    compulsory misses — one of the Inter-processor scheme's win sources.
    """
    streams = build_client_streams(mapping, nest, data_space)
    return {
        c: (int(footprint_curve(s)[-1]) if len(s) else 0)
        for c, s in streams.items()
    }
