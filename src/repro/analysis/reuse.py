"""LRU stack (reuse) distance analysis.

The *reuse distance* of an access is the number of distinct chunks
referenced since the previous access to the same chunk (∞ for first
touches).  Mattson's classic result: an LRU cache of capacity ``C``
hits exactly the accesses with reuse distance ≤ C — so one pass over a
trace yields the hit rate of *every* capacity at once.  We use it to
explain which revisit distances a mapping converts into cache hits.

The computation uses a Fenwick (binary indexed) tree over last-access
positions: O(N log N) overall, no per-access Python scanning beyond the
tree walks.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive

__all__ = ["reuse_distance_profile", "hit_rate_for_capacity", "ReuseProfile"]


class _Fenwick:
    """Binary indexed tree over positions, counting live markers."""

    __slots__ = ("tree", "n")

    def __init__(self, n: int):
        self.n = n
        self.tree = np.zeros(n + 1, dtype=np.int64)

    def add(self, i: int, delta: int) -> None:
        i += 1
        while i <= self.n:
            self.tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        """Sum of markers at positions < i."""
        total = 0
        while i > 0:
            total += self.tree[i]
            i -= i & (-i)
        return int(total)


class ReuseProfile:
    """Reuse-distance histogram of one access trace."""

    def __init__(self, distances: np.ndarray, cold_misses: int, length: int):
        self.distances = distances  # finite distances only, one per reuse
        self.cold_misses = int(cold_misses)
        self.length = int(length)

    @property
    def num_reuses(self) -> int:
        return int(len(self.distances))

    def hit_rate(self, capacity: int) -> float:
        """Hit rate of an LRU cache with ``capacity`` chunks (Mattson)."""
        check_positive("capacity", capacity)
        if self.length == 0:
            return 0.0
        hits = int(np.count_nonzero(self.distances < capacity))
        return hits / self.length

    def miss_rate(self, capacity: int) -> float:
        return 1.0 - self.hit_rate(capacity)

    def hit_rate_curve(self, capacities: list[int]) -> dict[int, float]:
        return {c: self.hit_rate(c) for c in capacities}

    def percentile(self, q: float) -> float:
        """q-th percentile of the finite reuse distances."""
        if self.num_reuses == 0:
            return float("inf")
        return float(np.percentile(self.distances, q))

    def __repr__(self) -> str:
        return (
            f"ReuseProfile(accesses={self.length}, reuses={self.num_reuses}, "
            f"cold={self.cold_misses})"
        )


def reuse_distance_profile(trace: np.ndarray) -> ReuseProfile:
    """Compute the LRU stack distance of every access in a trace.

    ``trace`` is a 1-D vector of chunk ids.  Returns the profile with
    one finite distance per re-access and the cold-miss count.
    """
    t = np.asarray(trace, dtype=np.int64)
    if t.ndim != 1:
        raise ValueError("trace must be a 1-D chunk-id vector")
    n = len(t)
    if n == 0:
        return ReuseProfile(np.empty(0, dtype=np.int64), 0, 0)
    fen = _Fenwick(n)
    last_pos: dict[int, int] = {}
    distances = []
    cold = 0
    for pos in range(n):
        chunk = int(t[pos])
        prev = last_pos.get(chunk)
        if prev is None:
            cold += 1
        else:
            # Distinct chunks touched strictly after prev: live markers in
            # (prev, pos).  Markers sit at each chunk's last position.
            distances.append(fen.prefix(pos) - fen.prefix(prev + 1))
            fen.add(prev, -1)
        fen.add(pos, +1)
        last_pos[chunk] = pos
    return ReuseProfile(np.asarray(distances, dtype=np.int64), cold, n)


def hit_rate_for_capacity(trace: np.ndarray, capacity: int) -> float:
    """Convenience: the LRU hit rate of one capacity on one trace."""
    return reuse_distance_profile(trace).hit_rate(capacity)
