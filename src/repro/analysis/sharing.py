"""Client-pair sharing analysis of a mapping.

Quantifies exactly the property the paper's two rules (§3) are about:
whether iterations that share data ended up on clients that have
affinity at some storage cache.  The *sharing matrix* counts distinct
data chunks each client pair touches in common; the *affinity quality*
compares sharing across cache-sibling pairs against sharing across
unrelated pairs — a good mapping concentrates sharing below the shared
caches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mapping import Mapping
from repro.hierarchy.topology import CacheHierarchy
from repro.polyhedral.arrays import DataSpace
from repro.polyhedral.nest import LoopNest
from repro.simulator.streams import chunk_matrix_for

__all__ = ["sharing_matrix", "mapping_affinity_quality", "AffinityQuality"]


def _client_chunk_sets(
    mapping: Mapping, nest: LoopNest, data_space: DataSpace
) -> dict[int, set[int]]:
    matrix = chunk_matrix_for(nest, data_space)
    return {
        c: set(np.unique(matrix[ranks]).tolist()) if len(ranks) else set()
        for c, ranks in mapping.client_order.items()
    }


def sharing_matrix(
    mapping: Mapping, nest: LoopNest, data_space: DataSpace
) -> np.ndarray:
    """``S[a, b]`` = number of distinct data chunks clients a and b share.

    The diagonal holds each client's footprint size.
    """
    sets = _client_chunk_sets(mapping, nest, data_space)
    k = mapping.num_clients
    out = np.zeros((k, k), dtype=np.int64)
    clients = sorted(sets)
    for i, a in enumerate(clients):
        out[a, a] = len(sets[a])
        for b in clients[i + 1 :]:
            shared = len(sets[a] & sets[b])
            out[a, b] = out[b, a] = shared
    return out


@dataclass(frozen=True)
class AffinityQuality:
    """Average pairwise sharing, split by cache affinity.

    ``sibling_sharing``: mean shared-chunk count over client pairs that
    share *some* storage cache; ``stranger_sharing``: mean over pairs
    that share none.  ``ratio > 1`` means the mapping concentrates data
    sharing below the shared caches — the paper's second rule.
    """

    sibling_sharing: float
    stranger_sharing: float

    @property
    def ratio(self) -> float:
        if self.stranger_sharing == 0:
            return float("inf") if self.sibling_sharing > 0 else 1.0
        return self.sibling_sharing / self.stranger_sharing


def mapping_affinity_quality(
    mapping: Mapping,
    nest: LoopNest,
    data_space: DataSpace,
    hierarchy: CacheHierarchy,
) -> AffinityQuality:
    """Score how well a mapping respects the paper's two rules (§3)."""
    S = sharing_matrix(mapping, nest, data_space)
    k = hierarchy.num_clients
    sib, strangers = [], []
    for a in range(k):
        for b in range(a + 1, k):
            (sib if hierarchy.have_affinity(a, b) else strangers).append(
                int(S[a, b])
            )
    return AffinityQuality(
        sibling_sharing=float(np.mean(sib)) if sib else 0.0,
        stranger_sharing=float(np.mean(strangers)) if strangers else 0.0,
    )
