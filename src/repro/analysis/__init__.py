"""Offline analysis of access streams and mappings.

The storage-cache literature's standard diagnostics, used here to
*explain* the mapping results rather than just report them:

* :mod:`~repro.analysis.reuse` — LRU stack (reuse) distance profiles:
  the hit rate of *every* cache size from one pass over a trace;
* :mod:`~repro.analysis.sharing` — client-pair sharing matrices and
  the constructive-sharing quality of a mapping against a hierarchy;
* :mod:`~repro.analysis.footprint` — per-client footprints and
  working-set curves.
"""

from repro.analysis.footprint import footprint_curve, mapping_footprints
from repro.analysis.reuse import hit_rate_for_capacity, reuse_distance_profile
from repro.analysis.sharing import mapping_affinity_quality, sharing_matrix

__all__ = [
    "reuse_distance_profile",
    "hit_rate_for_capacity",
    "sharing_matrix",
    "mapping_affinity_quality",
    "footprint_curve",
    "mapping_footprints",
]
