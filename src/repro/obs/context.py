"""Request ids and span contexts — the correlation fabric of ``repro.obs``.

Every serve request and traced CLI invocation gets a **request id**
(the trace id of its span tree); every open span has a **span context**
(trace id + span id) that children attach to.  The current context
rides a :mod:`contextvars` variable, so it follows ``await`` chains and
nested ``with`` blocks for free; crossing an explicit boundary — a
worker thread, a process-pool payload, an HTTP hop — is done by
shipping ``SpanContext.as_dict()`` and reattaching on the far side
(see :func:`repro.exec.executor.run_payload` and the
``X-Repro-Request-Id`` header in :mod:`repro.serve.server`).

Stdlib-only and dependency-free within the package, so the profiler can
import the tracer without cycling through telemetry.
"""

from __future__ import annotations

import os
import re
import time
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Mapping

__all__ = [
    "REQUEST_ID_HEADER",
    "SpanContext",
    "current_context",
    "new_request_id",
    "new_span_id",
    "sanitize_request_id",
]

#: The correlation header every serve response carries (and every
#: request may supply, for cross-system tracing).
REQUEST_ID_HEADER = "X-Repro-Request-Id"

#: Accepted client-supplied request ids: printable, no separators that
#: could smuggle header or JSON structure, bounded length.
_ID_RE = re.compile(r"^[A-Za-z0-9._:-]{1,128}$")


@dataclass(frozen=True)
class SpanContext:
    """The (trace id, span id) pair children and remote spans attach to."""

    trace_id: str
    span_id: str

    def as_dict(self) -> dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @staticmethod
    def from_dict(doc: Mapping[str, Any]) -> "SpanContext":
        return SpanContext(str(doc["trace_id"]), str(doc["span_id"]))


def new_request_id() -> str:
    """A fresh request id: millisecond-sortable prefix + random suffix."""
    return f"req-{int(time.time() * 1000):013x}-{os.urandom(6).hex()}"


def new_span_id() -> str:
    """A fresh 64-bit random span id (unique across pool workers)."""
    return os.urandom(8).hex()


def sanitize_request_id(raw: str | None) -> str:
    """A client-supplied request id, or ``""`` when unusable.

    Callers fall back to :func:`new_request_id` on ``""`` — a malformed
    id is replaced, never echoed.
    """
    if not raw or not _ID_RE.match(raw):
        return ""
    return raw


#: The currently open span, if any.  Context-local: follows tasks and
#: nested scopes automatically; explicitly reattached across threads
#: and processes.
_CURRENT: ContextVar[SpanContext | None] = ContextVar(
    "repro_obs_current_span", default=None
)


def current_context() -> SpanContext | None:
    """The context of the innermost open span (None outside any span)."""
    return _CURRENT.get()
