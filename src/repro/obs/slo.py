"""SLO aggregation: per-stage latency quantiles from finished spans.

A span's **stage** is the first dotted segment of its name — the
``request``, ``coalesce``, ``exec``, ``mapping``, ``simulate``,
``store``, ``prepare`` … groups one request's tree passes through.
Durations land in the bucketed :class:`~repro.telemetry.registry.Histogram`
so p50/p95/p99 come from the same fixed log-spaced buckets the metrics
pipeline exports, and the report closes with the slowest request roots
(the traces worth opening in ``chrome://tracing`` first).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.obs.tracer import Span
from repro.telemetry.registry import Histogram
from repro.util.tables import format_table

__all__ = ["stage_of", "slo_report", "render_slo"]

#: Report/record identity for the SLO JSON document.
SLO_RECORD = "repro-slo-report"


def stage_of(name: str) -> str:
    """The stage a span name belongs to: its first dotted segment."""
    return name.split(".", 1)[0]


def slo_report(spans: Iterable[Span], top: int = 5) -> dict[str, Any]:
    """Aggregate spans into per-stage quantiles + slowest-roots ranking."""
    spans = list(spans)
    stages: dict[str, Histogram] = {}
    for s in spans:
        hist = stages.get(stage_of(s.name))
        if hist is None:
            hist = stages[stage_of(s.name)] = Histogram()
        hist.observe(s.elapsed_s)

    span_ids = {s.span_id for s in spans}
    roots = [s for s in spans if not s.parent_id or s.parent_id not in span_ids]
    roots.sort(key=lambda s: s.elapsed_s, reverse=True)

    return {
        "record": SLO_RECORD,
        "spans": len(spans),
        "stages": {
            name: {
                "count": hist.count,
                "p50_s": hist.quantile(0.50),
                "p95_s": hist.quantile(0.95),
                "p99_s": hist.quantile(0.99),
                "max_s": hist.max,
                "sum_s": hist.sum,
                "mean_s": hist.mean,
            }
            for name, hist in sorted(stages.items())
        },
        "slowest": [
            {
                "trace_id": s.trace_id,
                "name": s.name,
                "elapsed_s": s.elapsed_s,
                "pid": s.pid,
            }
            for s in roots[: max(top, 0)]
        ],
    }


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}"


def render_slo(report: dict[str, Any]) -> str:
    """Render an :func:`slo_report` document as aligned text tables."""
    lines = [
        format_table(
            ["stage", "count", "p50 (ms)", "p95 (ms)", "p99 (ms)", "max (ms)"],
            [
                [
                    name,
                    row["count"],
                    _ms(row["p50_s"]),
                    _ms(row["p95_s"]),
                    _ms(row["p99_s"]),
                    _ms(row["max_s"]),
                ]
                for name, row in report.get("stages", {}).items()
            ],
            title=f"per-stage latency ({report.get('spans', 0)} spans)",
        )
    ]
    slowest = report.get("slowest", [])
    if slowest:
        lines.append("")
        lines.append(
            format_table(
                ["trace", "root span", "elapsed (ms)", "pid"],
                [
                    [s["trace_id"], s["name"], _ms(s["elapsed_s"]), s["pid"]]
                    for s in slowest
                ],
                title="slowest roots",
            )
        )
    return "\n".join(lines)
