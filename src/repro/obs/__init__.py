"""``repro.obs`` — end-to-end span tracing, correlation, SLO reporting.

One request (serve or CLI) = one request id = one span tree: admission,
queueing, coalescing, pool dispatch, mapper, simulation and store I/O
each contribute a span, reassembled by :func:`build_trees`, exported to
Chrome-trace for flamegraphs, and aggregated by :func:`slo_report` into
per-stage p50/p95/p99.

The default tracer is :data:`NULL_TRACER` — tracing off costs one
lookup and an attribute check per span site.  :mod:`~repro.obs.context`
and :mod:`~repro.obs.tracer` are stdlib-only by design so the telemetry
profiler can import them without an import cycle.
"""

from repro.obs.context import (
    REQUEST_ID_HEADER,
    SpanContext,
    current_context,
    new_request_id,
    new_span_id,
    sanitize_request_id,
)
from repro.obs.export import (
    read_spans_jsonl,
    spans_to_chrome,
    write_chrome_spans,
    write_spans_jsonl,
)
from repro.obs.slo import render_slo, slo_report, stage_of
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    build_trees,
    get_tracer,
    set_tracer,
    span,
    thread_tracer,
    use_tracer,
)

__all__ = [
    "REQUEST_ID_HEADER",
    "SpanContext",
    "current_context",
    "new_request_id",
    "new_span_id",
    "sanitize_request_id",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "span",
    "build_trees",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "thread_tracer",
    "spans_to_chrome",
    "write_chrome_spans",
    "write_spans_jsonl",
    "read_spans_jsonl",
    "slo_report",
    "render_slo",
    "stage_of",
]
