"""Span exports: JSONL round-trip and Chrome-trace flamegraphs.

The JSONL form (one ``Span.as_dict()`` document per line) is both the
tracer's live log format and the interchange format ``repro obs``
commands consume, so a span log written by ``repro serve --span-log``
reads back with :func:`read_spans_jsonl` with no conversion.

The Chrome form mirrors :func:`repro.trace.export.write_chrome_trace`
(the simulator's event exporter): complete (``ph: "X"``) events with
microsecond timestamps, one **process lane per OS pid** (the serve
process and each pool worker get their own group) and one **thread
lane per request id**, so a coalesced batch reads as parallel request
rows feeding one worker row in ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Iterable

from repro.obs.tracer import Span

__all__ = [
    "spans_to_chrome",
    "write_chrome_spans",
    "write_spans_jsonl",
    "read_spans_jsonl",
]


def spans_to_chrome(
    spans: Iterable[Span], meta: dict[str, Any] | None = None
) -> dict[str, Any]:
    """Build the ``chrome://tracing`` JSON document for a span set."""
    spans = sorted(spans, key=lambda s: (s.start_unix, s.elapsed_s))
    lanes: dict[tuple[int, str], int] = {}
    events: list[dict[str, Any]] = []
    for s in spans:
        tid = lanes.setdefault((s.pid, s.trace_id), len(lanes))
        args: dict[str, Any] = {
            "trace_id": s.trace_id,
            "span_id": s.span_id,
            "parent_id": s.parent_id,
        }
        args.update(s.attrs)
        events.append(
            {
                "name": s.name,
                "cat": "span",
                "ph": "X",
                "ts": round(s.start_unix * 1e6, 3),
                "dur": round(s.elapsed_s * 1e6, 3),
                "pid": s.pid,
                "tid": tid,
                "args": args,
            }
        )
    name_meta: list[dict[str, Any]] = []
    for (pid, trace_id), tid in lanes.items():
        name_meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": trace_id},
            }
        )
        name_meta.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )
    return {
        "traceEvents": name_meta + events,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs", **(meta or {})},
    }


def write_chrome_spans(
    path: str | pathlib.Path,
    spans: Iterable[Span],
    meta: dict[str, Any] | None = None,
) -> None:
    """Write a span set as Chrome-trace JSON for ``chrome://tracing``."""
    doc = spans_to_chrome(spans, meta)
    pathlib.Path(path).write_text(json.dumps(doc) + "\n")


def write_spans_jsonl(path: str | pathlib.Path, spans: Iterable[Span]) -> int:
    """Write spans as JSONL (the tracer's log format); returns the count."""
    n = 0
    with open(path, "w") as fh:
        for s in spans:
            fh.write(json.dumps(s.as_dict(), sort_keys=True) + "\n")
            n += 1
    return n


def read_spans_jsonl(path: str | pathlib.Path) -> list[Span]:
    """Read a span JSONL file (tolerating blank lines) back into spans."""
    spans: list[Span] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(Span.from_dict(json.loads(line)))
            except (ValueError, KeyError, TypeError) as exc:
                raise ValueError(f"{path}:{lineno}: bad span line ({exc})") from None
    return spans
