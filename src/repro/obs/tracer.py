"""Causal span tracing: a bounded ring of finished spans + JSONL log.

A :class:`Span` is one timed operation with causal identity — request
(trace) id, its own span id, and its parent's — so finished spans
reassemble into per-request trees (:func:`build_trees`) covering
admission → queueing → pool dispatch → mapper → simulate → store I/O.

The :class:`Tracer` mirrors the metrics registry's activation pattern:
the process-wide default is :data:`NULL_TRACER` (``enabled = False``,
every operation a no-op), :func:`use_tracer` scopes a live tracer, and
:func:`thread_tracer` overrides per-thread so a worker's private
collection tracer never hijacks what the serve event loop sees.
Disabled cost is one global lookup and an attribute check per span
site — spans wrap pipeline stages, never per-access work.

Finished spans land in a bounded ring (``capacity`` newest survive;
``dropped`` counts the overflow) and, when ``log_path`` is set, as
JSONL lines an external tail or ``repro obs`` can consume while the
process runs.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.obs.context import (
    _CURRENT,
    SpanContext,
    new_request_id,
    new_span_id,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "span",
    "build_trees",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "thread_tracer",
]


@dataclass
class Span:
    """One finished timed operation with causal identity."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    #: Wall-clock start (epoch seconds) — comparable across processes.
    start_unix: float
    #: Monotonic duration (perf_counter delta).
    elapsed_s: float
    #: Process that executed the operation (pool workers differ).
    pid: int = 0
    attrs: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix": self.start_unix,
            "elapsed_s": self.elapsed_s,
            "pid": self.pid,
        }
        if self.attrs:
            out["attrs"] = self.attrs
        return out

    @staticmethod
    def from_dict(doc: Mapping[str, Any]) -> "Span":
        return Span(
            name=str(doc["name"]),
            trace_id=str(doc["trace_id"]),
            span_id=str(doc["span_id"]),
            parent_id=doc.get("parent_id"),
            start_unix=float(doc.get("start_unix", 0.0)),
            elapsed_s=float(doc.get("elapsed_s", 0.0)),
            pid=int(doc.get("pid", 0)),
            attrs=dict(doc.get("attrs") or {}),
        )


class Tracer:
    """Collects finished spans into a bounded ring and optional JSONL log.

    Thread-safe: spans finish on the serve event loop, backend worker
    threads and (after repatriation) batch merges concurrently.
    """

    enabled = True

    def __init__(self, capacity: int = 4096, log_path: str | None = None):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.log_path = str(log_path) if log_path else ""
        self.dropped = 0
        self._ring: deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._log = open(self.log_path, "a") if self.log_path else None

    def record(self, span_: Span) -> None:
        """Append one finished span (evicting the oldest past capacity)."""
        with self._lock:
            if len(self._ring) == self.capacity:
                self.dropped += 1
            self._ring.append(span_)
            if self._log is not None:
                self._log.write(
                    json.dumps(span_.as_dict(), sort_keys=True) + "\n"
                )
                self._log.flush()

    def ingest(self, span_dicts: Iterable[Mapping[str, Any]]) -> int:
        """Fold repatriated worker spans (``as_dict`` documents) in.

        The piggyback path: pool workers return their span list next to
        the metrics snapshot, and the parent ingests both — a parallel
        run's trace carries the same spans a serial run's would.
        """
        n = 0
        for doc in span_dicts:
            self.record(Span.from_dict(doc))
            n += 1
        return n

    def spans(self) -> list[Span]:
        """Ring contents, oldest first."""
        with self._lock:
            return list(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self.dropped = 0

    def close(self) -> None:
        """Close the JSONL log (the ring stays readable)."""
        with self._lock:
            if self._log is not None:
                self._log.close()
                self._log = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def __repr__(self) -> str:
        return (
            f"Tracer({len(self)}/{self.capacity} spans"
            f"{', log=' + self.log_path if self.log_path else ''})"
        )


class NullTracer:
    """The disabled tracer: every operation is a no-op."""

    enabled = False
    capacity = 0
    dropped = 0
    log_path = ""

    def record(self, span_: Span) -> None:
        pass

    def ingest(self, span_dicts: Iterable[Mapping[str, Any]]) -> int:
        return 0

    def spans(self) -> list[Span]:
        return []

    def clear(self) -> None:
        pass

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NullTracer()"


#: The process-wide disabled tracer (the default active tracer).
NULL_TRACER = NullTracer()

_active: Tracer | NullTracer = NULL_TRACER

#: Per-thread override, so run_payload's private collection tracer in a
#: serve backend thread never shadows the event loop's live tracer.
_LOCAL = threading.local()


def get_tracer() -> Tracer | NullTracer:
    """The active tracer span sites record into."""
    override = getattr(_LOCAL, "tracer", None)
    return _active if override is None else override


def set_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install the active tracer (``None`` restores the null tracer).

    Returns the previously active tracer so callers can restore it.
    """
    global _active
    previous = _active
    _active = tracer if tracer is not None else NULL_TRACER
    return previous


class use_tracer:
    """Scope ``tracer`` as the active one, restoring the previous on exit."""

    def __init__(self, tracer: Tracer | NullTracer):
        self._tracer = tracer
        self._previous: Tracer | NullTracer | None = None

    def __enter__(self) -> Tracer | NullTracer:
        global _active
        self._previous = _active
        _active = self._tracer
        return self._tracer

    def __exit__(self, *exc) -> None:
        global _active
        assert self._previous is not None
        _active = self._previous


class thread_tracer:
    """Scope ``tracer`` as active *for the current thread only*."""

    def __init__(self, tracer: Tracer | NullTracer):
        self._tracer = tracer
        self._previous: Tracer | NullTracer | None = None

    def __enter__(self) -> Tracer | NullTracer:
        self._previous = getattr(_LOCAL, "tracer", None)
        _LOCAL.tracer = self._tracer
        return self._tracer

    def __exit__(self, *exc) -> None:
        _LOCAL.tracer = self._previous


class span:
    """Open a span; context manager, mirroring :class:`telemetry.phase`.

    Identity resolution, in order:

    * explicit ``trace_id``/``parent_id`` keywords — cross-boundary
      reattachment (a worker resuming a request's tree, a batch span
      parented onto its leader request);
    * the innermost open span in this context — ordinary nesting;
    * neither — a fresh root with a new request id.

    Remaining keywords become span attributes (JSON-safe values only);
    :meth:`set` adds more while the span is open (e.g. an outcome known
    only at the end).  When the active tracer is disabled the whole
    thing is two no-op calls.
    """

    __slots__ = ("name", "_attrs", "_tracer", "_span", "_token", "_start")

    def __init__(
        self,
        name: str,
        *,
        trace_id: str | None = None,
        parent_id: str | None = None,
        **attrs,
    ):
        self.name = name
        self._attrs = attrs
        self._attrs["__trace_id"] = trace_id
        self._attrs["__parent_id"] = parent_id
        self._tracer: Tracer | None = None
        self._span: Span | None = None
        self._token = None
        self._start = 0.0

    def __enter__(self) -> "span":
        tracer = get_tracer()
        if not tracer.enabled:
            return self
        trace_id = self._attrs.pop("__trace_id")
        parent_id = self._attrs.pop("__parent_id")
        if trace_id is None:
            current = _CURRENT.get()
            if current is not None:
                trace_id = current.trace_id
                if parent_id is None:
                    parent_id = current.span_id
            else:
                trace_id = new_request_id()
        self._tracer = tracer  # type: ignore[assignment]
        self._span = Span(
            name=self.name,
            trace_id=trace_id,
            span_id=new_span_id(),
            parent_id=parent_id,
            start_unix=time.time(),
            elapsed_s=0.0,
            pid=os.getpid(),
            attrs=self._attrs,
        )
        self._token = _CURRENT.set(SpanContext(trace_id, self._span.span_id))
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._span is None or self._tracer is None:
            return
        self._span.elapsed_s = time.perf_counter() - self._start
        if exc_type is not None and "error" not in self._span.attrs:
            self._span.attrs["error"] = exc_type.__name__
        _CURRENT.reset(self._token)
        self._tracer.record(self._span)
        self._span = None
        self._tracer = None
        self._token = None

    def set(self, **attrs) -> None:
        """Attach attributes to the open span (no-op when not tracing)."""
        if self._span is not None:
            self._span.attrs.update(attrs)

    @property
    def context(self) -> SpanContext | None:
        """The open span's context (None when tracing is disabled)."""
        if self._span is None:
            return None
        return SpanContext(self._span.trace_id, self._span.span_id)


def build_trees(spans: Iterable[Span]) -> list[dict[str, Any]]:
    """Reassemble finished spans into trees, roots sorted by start time.

    A node is ``{"span": Span, "children": [node, ...]}``.  Spans whose
    parent is absent (evicted from the ring, or living in another
    process's trace) become roots — the forest stays useful under ring
    eviction.  Children sort by start time.
    """
    spans = list(spans)
    nodes: dict[str, dict[str, Any]] = {
        s.span_id: {"span": s, "children": []} for s in spans
    }
    roots: list[dict[str, Any]] = []
    for s in spans:
        node = nodes[s.span_id]
        parent = nodes.get(s.parent_id) if s.parent_id else None
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node["children"].sort(key=lambda n: n["span"].start_unix)
    roots.sort(key=lambda n: n["span"].start_unix)
    return roots
