"""Benchmark + regeneration of Table 2 (original-version miss rates)."""

from repro.experiments import table2


def test_table2(benchmark, bench_config, report_sink):
    report = benchmark.pedantic(
        table2.run, args=(bench_config,), rounds=1, iterations=1
    )
    report_sink(report)
    assert len(report.rows) == 8
    # The paper's qualitative claim: miss rates degrade with depth for
    # most applications.
    assert report.summary["apps_with_deeper_degradation"] >= 5
