"""Benchmark + regeneration of the §5.4 discussion experiments."""

from repro.experiments import discussion


def test_multinest(benchmark, bench_config, report_sink):
    report = benchmark.pedantic(
        discussion.run_multinest, args=(bench_config,), rounds=1, iterations=1
    )
    report_sink(report)
    # Paper: joint mapping adds cache hits (theirs: ~3%; exact magnitude
    # depends on how much reuse is inter-nest).
    assert report.summary["hit_gain"] > 0.0


def test_dependences(benchmark, bench_config, report_sink):
    report = benchmark.pedantic(
        discussion.run_dependences, args=(bench_config,), rounds=1, iterations=1
    )
    report_sink(report)
    # Fusing dependent chunks needs no more syncs than treating them as
    # sharing (usually far fewer).
    assert report.summary["syncs_fuse"] <= report.summary["syncs_sync"]
