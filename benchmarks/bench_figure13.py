"""Benchmark + regeneration of Figure 13 (cache-capacity sensitivity)."""

from repro.experiments import figure13


def test_figure13(benchmark, small_config, report_sink):
    report = benchmark.pedantic(
        figure13.run, args=(small_config,), rounds=1, iterations=1
    )
    report_sink(report)
    s = report.summary
    # Paper shape (scheduled scheme): halving capacities boosts savings,
    # growing them shrinks savings.
    assert s["inter+sched_io_0.5_0.5_0.5"] <= s["inter+sched_io_1_1_1"] + 0.02
    assert s["inter+sched_io_1_1_1"] <= s["inter+sched_io_4_4_4"] + 0.02
