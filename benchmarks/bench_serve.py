"""Benchmark for the serving layer: closed-loop load, cold vs warm.

A :class:`MappingServer` on an ephemeral port (the same object ``repro
serve`` runs) takes a closed-loop load — a handful of client threads,
each issuing the next request as soon as the previous answer lands —
over a fixed mix of (workload, mapper) keys.  Two passes over an
initially empty :class:`ResultStore`:

* **cold** — every distinct key simulates once; repeats within the pass
  coalesce onto in-flight work or hit the freshly warmed store;
* **warm** — the same load again: the store answers everything, zero
  simulations, and the latency distribution collapses to I/O.

Printed per pass: throughput plus p50/p99 latency; the assertions
require the warm pass to simulate nothing and beat the cold pass.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.exec.store import ResultStore
from repro.experiments.report import ExperimentReport
from repro.serve.client import ServeClient
from repro.serve.server import MappingServer
from repro.telemetry import MetricsRegistry, declare_pipeline_metrics

WORKLOADS = ("hf", "sar")
MAPPERS = ("original", "inter", "inter+sched")
SCALE = 8
CLIENTS = 4
REQUESTS = 48


@pytest.fixture()
def serve_harness(tmp_path):
    registry = MetricsRegistry()
    declare_pipeline_metrics(registry)
    server = MappingServer(
        port=0,
        store=ResultStore(tmp_path / "serve-cache"),
        registry=registry,
    )
    thread = threading.Thread(
        target=lambda: server.serve_forever(install_signals=False),
        name="bench-serve",
        daemon=True,
    )
    thread.start()
    assert server.ready.wait(30.0)
    yield server, registry
    server.request_shutdown()
    thread.join(30.0)


def _run_pass(url: str) -> tuple[float, list[float]]:
    """Closed-loop pass: CLIENTS threads drain a shared request list."""
    mix = [
        (WORKLOADS[i % len(WORKLOADS)], MAPPERS[i % len(MAPPERS)])
        for i in range(REQUESTS)
    ]
    lock = threading.Lock()
    latencies: list[float] = []
    errors: list[Exception] = []

    def worker():
        with ServeClient(url, timeout=120.0) as client:
            while True:
                with lock:
                    if not mix:
                        return
                    workload, mapper = mix.pop()
                t0 = time.perf_counter()
                try:
                    client.experiment(workload, mapper, scale=SCALE)
                except Exception as exc:  # noqa: BLE001 - failed pass below
                    with lock:
                        errors.append(exc)
                    return
                with lock:
                    latencies.append(time.perf_counter() - t0)

    threads = [threading.Thread(target=worker, daemon=True) for _ in range(CLIENTS)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(300.0)
    wall = time.perf_counter() - t0
    assert not errors, errors[0]
    assert len(latencies) == REQUESTS
    return wall, sorted(latencies)


def _pct(sorted_values: list[float], q: float) -> float:
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


def test_serve_cold_vs_warm(benchmark, serve_harness, report_sink):
    server, registry = serve_harness
    url = f"http://127.0.0.1:{server.port}"
    distinct = len(WORKLOADS) * len(MAPPERS)

    cold_wall, cold_lat = _run_pass(url)
    cold_sims = registry.counter("simulator.simulations").value
    # Coalescing + the store bound the cold pass: at most one simulation
    # per distinct key, no matter how often the mix repeats it.
    assert 0 < cold_sims <= distinct

    warm_wall, warm_lat = benchmark.pedantic(
        lambda: _run_pass(url), rounds=1, iterations=1
    )
    warm_sims = registry.counter("simulator.simulations").value - cold_sims
    assert warm_sims == 0

    rows = []
    for label, wall, lat, sims in (
        ("cold", cold_wall, cold_lat, cold_sims),
        ("warm", warm_wall, warm_lat, warm_sims),
    ):
        rows.append(
            [
                label,
                str(REQUESTS),
                str(sims),
                f"{REQUESTS / wall:.1f}",
                f"{_pct(lat, 0.50) * 1e3:.1f}",
                f"{_pct(lat, 0.99) * 1e3:.1f}",
            ]
        )
    report_sink(
        ExperimentReport(
            "bench serve",
            f"closed loop, {CLIENTS} clients, {distinct} distinct keys "
            f"(scale {SCALE})",
            ["pass", "requests", "sims", "req/s", "p50 (ms)", "p99 (ms)"],
            rows,
            summary={
                "cold_p99_ms": _pct(cold_lat, 0.99) * 1e3,
                "warm_p99_ms": _pct(warm_lat, 0.99) * 1e3,
                "warm_speedup": cold_wall / warm_wall if warm_wall else float("inf"),
            },
        )
    )
    assert warm_wall < cold_wall
