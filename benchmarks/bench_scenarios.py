"""Benchmark for the scenario layer: generators × replacement policies.

Runs the three stock stochastic scenarios (``zipf-hot``,
``zipf-uniform``, ``onoff-bursty``) across a small per-level policy
matrix on the eighth-scale topology, reporting per-level hit rates,
the pinnable result digest and the simulation wall time for each cell.

Two entry points:

* ``pytest benchmarks/bench_scenarios.py --benchmark-only`` — the usual
  table via ``report_sink``;
* ``python benchmarks/bench_scenarios.py -o BENCH_scenarios.json`` —
  standalone, writing the machine-readable document the CI
  scenario-smoke job uploads (and the repo pins a copy of).

Everything is seeded through the config, so every cell's ``digest`` is
reproducible bit-for-bit across hosts and worker counts.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from typing import Any

from repro.experiments.config import scaled_config
from repro.scenario.registry import get_scenario
from repro.scenario.runner import result_digest, run_scenario, scenario_key

SCENARIOS = ("zipf-hot", "zipf-uniform", "onoff-bursty")

#: Per-level policy matrices (L1, L2, L3) — None means the config default
#: (uniform LRU, the paper's §5.1 setting).
POLICY_MATRICES: tuple[tuple[str, tuple[str, str, str] | None], ...] = (
    ("lru (paper)", None),
    ("arc at L2", ("lru", "arc", "lru")),
    ("rrip at L2/L3", ("lru", "rrip", "rrip")),
)

SCALE = 8


def _run_cell(
    scenario_name: str, policies: tuple[str, str, str] | None, config
) -> dict[str, Any]:
    spec = get_scenario(scenario_name)
    if policies is not None:
        spec = dataclasses.replace(spec, policies=policies)
    key = scenario_key(spec, config)
    t0 = time.perf_counter()
    result = run_scenario(spec, config)
    seconds = time.perf_counter() - t0
    levels = {
        level: {
            "accesses": stats.accesses,
            "hits": stats.hits,
            "hit_rate": round(stats.hits / stats.accesses, 4)
            if stats.accesses
            else 0.0,
        }
        for level, stats in sorted(result.sim.level_stats.items())
    }
    return {
        "scenario": scenario_name,
        "policies": list(policies) if policies else None,
        "key": key.digest,
        "digest": result_digest(result),
        "levels": levels,
        "seconds": round(seconds, 3),
    }


def run_matrix(config=None) -> dict[str, Any]:
    config = config if config is not None else scaled_config(SCALE)
    rows = [
        _run_cell(s, policies, config)
        for s in SCENARIOS
        for _, policies in POLICY_MATRICES
    ]
    return {
        "record": "repro-bench-scenarios",
        "scale": SCALE,
        "scenarios": list(SCENARIOS),
        "rows": rows,
    }


# -- pytest entry -------------------------------------------------------------------


def test_scenario_policy_matrix(benchmark, small_config, report_sink):
    from repro.experiments.report import ExperimentReport

    doc = benchmark.pedantic(
        lambda: run_matrix(small_config), rounds=1, iterations=1
    )
    labels = {json.dumps(p): label for label, p in POLICY_MATRICES}
    table = []
    for row in doc["rows"]:
        cells = [
            row["scenario"],
            labels[json.dumps(row["policies"])],
        ]
        for level in ("L1", "L2", "L3"):
            cells.append(f"{row['levels'][level]['hit_rate']:.3f}")
        cells.append(f"{row['seconds']:.2f}")
        table.append(cells)
    # The same (scenario, policies, seed) cell must always reproduce the
    # same digest — the property the CI smoke job pins one value of.
    again = run_matrix(small_config)
    assert [r["digest"] for r in again["rows"]] == [
        r["digest"] for r in doc["rows"]
    ]
    report_sink(
        ExperimentReport(
            "bench scenarios",
            f"generator scenarios x policy matrices (scale {SCALE})",
            ["scenario", "policies", "L1 hit", "L2 hit", "L3 hit", "s"],
            table,
        )
    )


# -- standalone entry ---------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o",
        "--output",
        default="BENCH_scenarios.json",
        help="where to write the benchmark document",
    )
    args = parser.parse_args(argv)
    doc = run_matrix()
    with open(args.output, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for row in doc["rows"]:
        hit = " ".join(
            f"{lvl}={row['levels'][lvl]['hit_rate']:.3f}"
            for lvl in sorted(row["levels"])
        )
        print(
            f"{row['scenario']:<14} {str(row['policies'] or 'lru'):<24} "
            f"{hit}  {row['seconds']:.2f}s"
        )
    print(f"wrote {args.output} ({len(doc['rows'])} cells)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
