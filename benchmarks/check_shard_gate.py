"""CI gate for the shard scale-out benchmark.

Compares a fresh ``bench_shard.py`` document against the pinned
``BENCH_shard.json`` baseline:

* **Digest identity is enforced unconditionally.**  Every key's digest
  must match the baseline, and the fresh run itself already proved the
  1-shard and 3-shard deployments agree — routing must never change
  what an experiment computes.
* **The speedup floor is conditional on cores.**  "3 shards ≥ 2x one
  shard" is a parallelism claim; on a host with fewer than
  ``--min-cores`` CPUs (the fresh document records ``cpu_count``) the
  workers time-share and the ratio is noise, so the floor is reported
  but not enforced.

Usage::

    python benchmarks/check_shard_gate.py BENCH_shard.json fresh.json \
        --min-speedup 2.0 --min-cores 3
"""

from __future__ import annotations

import argparse
import json
import sys


def _key_digests(doc: dict) -> dict[tuple[str, str], str]:
    return {
        (k["workload"], k["version"]): k["digest"] for k in doc.get("keys", [])
    }


def compare(
    baseline: dict,
    fresh: dict,
    min_speedup: float,
    min_cores: int,
) -> tuple[list[str], list[str]]:
    """Returns (problems, notes); any problem fails the gate."""
    problems: list[str] = []
    notes: list[str] = []
    for doc, label in ((baseline, "baseline"), (fresh, "fresh")):
        if doc.get("record") != "repro-bench-shard":
            problems.append(f"{label}: not a repro-bench-shard document")
    if problems:
        return problems, notes

    base_keys = _key_digests(baseline)
    fresh_keys = _key_digests(fresh)
    if set(base_keys) != set(fresh_keys):
        problems.append(
            "key sets differ: "
            f"baseline-only={sorted(set(base_keys) - set(fresh_keys))} "
            f"fresh-only={sorted(set(fresh_keys) - set(base_keys))}"
        )
    for key in sorted(set(base_keys) & set(fresh_keys)):
        if base_keys[key] != fresh_keys[key]:
            problems.append(
                f"DIGEST CHANGED for {key[0]}/{key[1]}: "
                f"{base_keys[key][:12]} -> {fresh_keys[key][:12]}"
            )

    speedup = float(fresh.get("speedup", 0.0))
    cores = int(fresh.get("cpu_count", 1))
    if cores >= min_cores:
        if speedup < min_speedup:
            problems.append(
                f"speedup {speedup:.2f}x below the {min_speedup:.2f}x floor "
                f"on a {cores}-core host"
            )
        else:
            notes.append(
                f"speedup {speedup:.2f}x >= {min_speedup:.2f}x floor "
                f"({cores} cores)"
            )
    else:
        notes.append(
            f"speedup floor skipped: host has {cores} core(s) < "
            f"{min_cores} (measured {speedup:.2f}x)"
        )
    return problems, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="pinned BENCH_shard.json")
    parser.add_argument("fresh", help="freshly generated document")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="3-shard over 1-shard throughput floor (default 2.0)",
    )
    parser.add_argument(
        "--min-cores",
        type=int,
        default=3,
        help="enforce the floor only on hosts with at least this many "
        "CPUs (default 3)",
    )
    args = parser.parse_args(argv)
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.fresh) as fh:
        fresh = json.load(fh)
    problems, notes = compare(
        baseline, fresh, args.min_speedup, args.min_cores
    )
    for note in notes:
        print(f"note: {note}")
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print(f"shard gate OK ({len(_key_digests(fresh))} keys digest-stable)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
