"""Benchmark for the campaign runner: the smoke campaign, cell by cell.

Expands ``examples/campaign_smoke.json`` (2 workloads x 2 versions x
2 engines plus one pairing, minus one exclusion = 7 cells at 1/16
scale), simulates each cell individually to get an honest per-cell
wall time, then replays the whole campaign against the now-warm store
to pin the manifest and report digests.

Two entry points:

* ``pytest benchmarks/bench_campaign.py --benchmark-only`` — the usual
  table via ``report_sink``;
* ``python benchmarks/bench_campaign.py -o BENCH_campaign.json`` —
  standalone, writing the machine-readable document the CI
  campaign-smoke job gates on (and the repo pins a copy of).

Every digest in the document is reproducible bit-for-bit across hosts
and worker counts; ``check_bench_regression.py`` fails on any drift.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Any

from repro.campaign import expand_campaign, load_campaign_file, run_campaign
from repro.exec import MemoryStore
from repro.exec.plan import execute_plan
from repro.scenario.runner import result_digest

SPEC_PATH = (
    pathlib.Path(__file__).resolve().parents[1]
    / "examples"
    / "campaign_smoke.json"
)


def run_bench() -> dict[str, Any]:
    spec = load_campaign_file(SPEC_PATH)
    plan = expand_campaign(spec)
    store = MemoryStore()
    task_by_digest = {t.key.digest: t for t in plan.plan.tasks}
    rows = []
    for cell in plan.cells:
        task = task_by_digest[cell.key_digest]
        t0 = time.perf_counter()
        results = execute_plan([task], store=store)
        seconds = time.perf_counter() - t0
        rows.append(
            {
                "cell": cell.label,
                "key": cell.key_digest,
                "digest": result_digest(results[cell.key_digest]),
                "seconds": round(seconds, 3),
            }
        )
    # Full campaign over the warm store: zero re-simulation, and the
    # manifest/report identity the CI smoke job pins.
    run = run_campaign(spec, store=store)
    return {
        "record": "repro-bench-campaign",
        "spec": "examples/campaign_smoke.json",
        "campaign": spec.name,
        "cells": len(rows),
        "rows": rows,
        "manifest_digest": run.manifest["digest"],
        "report_digest": run.report["digest"],
    }


# -- pytest entry -------------------------------------------------------------------


def test_campaign_smoke_bench(benchmark, report_sink):
    from repro.experiments.report import ExperimentReport

    doc = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    # The same spec must always reproduce the same identity — the
    # property the CI campaign-smoke job pins one value of.
    again = run_bench()
    assert again["report_digest"] == doc["report_digest"]
    assert again["manifest_digest"] == doc["manifest_digest"]
    assert [r["digest"] for r in again["rows"]] == [
        r["digest"] for r in doc["rows"]
    ]
    table = [
        [r["cell"], r["digest"][:12], f"{r['seconds']:.2f}"]
        for r in doc["rows"]
    ]
    report_sink(
        ExperimentReport(
            "bench campaign",
            f"smoke campaign, per-cell ({doc['cells']} cells)",
            ["cell", "digest", "s"],
            table,
        )
    )


# -- standalone entry ---------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o",
        "--output",
        default="BENCH_campaign.json",
        help="where to write the benchmark document",
    )
    args = parser.parse_args(argv)
    doc = run_bench()
    with open(args.output, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for row in doc["rows"]:
        print(f"{row['cell']:<40} {row['digest'][:12]}  {row['seconds']:.2f}s")
    print(f"report digest: {doc['report_digest']}")
    print(f"wrote {args.output} ({doc['cells']} cells)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
