"""Benchmark + regeneration of Figure 14 (data-chunk-size sensitivity)."""

from repro.experiments import figure14


def test_figure14(benchmark, small_config, report_sink):
    report = benchmark.pedantic(
        figure14.run, args=(small_config,), rounds=1, iterations=1
    )
    report_sink(report)
    s = report.summary
    # Paper: smaller chunks improve savings monotonically...
    assert s["io_16"] < s["io_64"] < s["io_128"]
    # ...at the price of compilation (mapping) time.
    assert s["mapping_s_16"] > s["mapping_s_64"]
