"""Ablation benches for the design choices DESIGN.md §6 calls out.

Each ablation reruns a representative slice of the suite with one design
knob flipped and reports the suite-average normalized I/O latency, so
the contribution of each ingredient is visible:

* hierarchical (level-by-level) clustering vs. flat k-way clustering;
* balance-threshold sweep;
* Fig. 15 weight split (α/β);
* chunk execution order of the unscheduled scheme;
* storage cache replacement policy (the paper's orthogonality claim).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.clustering import distribute_iterations, flat_distribution
from repro.core.chunking import form_iteration_chunks
from repro.core.mapper import InterProcessorMapper
from repro.experiments.harness import normalized_suite, run_suite
from repro.experiments.report import ExperimentReport
from repro.simulator.engine import simulate
from repro.simulator.streams import build_client_streams
from repro.storage.filesystem import ParallelFileSystem
from repro.util.rng import make_rng
from repro.workloads.base import WorkloadParams
from repro.workloads.suite import get_workload

WORKLOADS = ("hf", "apsi", "wupwise")


def _avg_io(config, versions=("original", "inter")):
    results = run_suite(
        config, versions=versions, workloads=[get_workload(w) for w in WORKLOADS]
    )
    normalized = normalized_suite(results)
    out = {}
    for v in versions[1:]:
        out[v] = sum(n[v]["io_latency"] for n in normalized.values()) / len(
            normalized
        )
    return out


def _io_for_distribution(workload_name, config, distribution_fn):
    w = get_workload(workload_name)
    params = WorkloadParams(
        chunk_elems=config.chunk_elems, data_chunks=config.data_chunks
    )
    nest, ds = w.build(params)
    hierarchy = config.build_hierarchy()
    cs = form_iteration_chunks(nest, ds)
    dist = distribution_fn(cs, hierarchy, config.balance_threshold)
    mapping = InterProcessorMapper().map_distribution(dist, hierarchy, make_rng(1))
    streams = build_client_streams(mapping, nest, ds)
    fs = ParallelFileSystem(
        config.num_storage_nodes, config.chunk_elems * 1024, config.disk
    )
    sim = simulate(
        streams,
        hierarchy,
        fs,
        latency=config.latency,
        iterations_per_client=mapping.iteration_counts(),
    )
    return sim.io_latency_ms


def test_hierarchical_vs_flat_clustering(benchmark, bench_config, report_sink):
    """Does walking the cache tree beat hierarchy-oblivious k-way?"""

    def run():
        rows = []
        wins = 0
        for name in WORKLOADS:
            hier = _io_for_distribution(name, bench_config, distribute_iterations)
            flat = _io_for_distribution(name, bench_config, flat_distribution)
            wins += hier <= flat * 1.02
            rows.append([name, f"{hier:.0f}", f"{flat:.0f}"])
        return rows, wins

    rows, wins = benchmark.pedantic(run, rounds=1, iterations=1)
    report_sink(
        ExperimentReport(
            "Ablation clustering",
            "Hierarchical (Fig. 5) vs flat k-way clustering: io latency (ms)",
            ["workload", "hierarchical", "flat"],
            rows,
        )
    )
    assert wins >= 2  # tree awareness helps (or at worst ties) mostly


def test_balance_threshold_sweep(benchmark, bench_config, report_sink):
    def run():
        rows = []
        for bthres in (0.02, 0.10, 0.30):
            cfg = replace(bench_config, balance_threshold=bthres)
            io = _avg_io(cfg)["inter"]
            rows.append([f"{bthres:.2f}", f"{io:.3f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report_sink(
        ExperimentReport(
            "Ablation bthres",
            "Balance threshold sweep: inter io normalized to original",
            ["BThres", "inter io"],
            rows,
            notes=["paper uses 10%"],
        )
    )
    assert all(float(r[1]) < 1.0 for r in rows)


def test_alpha_beta_sweep(benchmark, bench_config, report_sink):
    """Paper §5.4: equal weights (0.5/0.5) generated the best results."""

    def run():
        rows = []
        for alpha, beta in ((1.0, 0.0), (0.5, 0.5), (0.0, 1.0)):
            cfg = replace(bench_config, alpha=alpha, beta=beta)
            io = _avg_io(cfg, versions=("original", "inter+sched"))["inter+sched"]
            rows.append([f"{alpha:.1f}/{beta:.1f}", f"{io:.3f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report_sink(
        ExperimentReport(
            "Ablation alpha-beta",
            "Fig. 15 weight sweep: inter+sched io normalized to original",
            ["alpha/beta", "io"],
            rows,
            notes=["paper: equal weights perform best"],
        )
    )
    assert all(float(r[1]) < 1.0 for r in rows)


def test_replacement_policy_orthogonality(benchmark, bench_config, report_sink):
    """Paper: 'our approach itself can work with any storage caching policy'."""

    def run():
        rows = []
        for policy in ("lru", "fifo", "clock", "lfu", "mq"):
            cfg = replace(bench_config, policy=policy)
            io = _avg_io(cfg)["inter"]
            rows.append([policy, f"{io:.3f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report_sink(
        ExperimentReport(
            "Ablation policy",
            "Replacement policy: inter io normalized to original",
            ["policy", "inter io"],
            rows,
        )
    )
    # The mapping keeps winning regardless of the policy.
    assert all(float(r[1]) < 1.0 for r in rows)


def test_chunk_order_of_unscheduled_scheme(benchmark, bench_config, report_sink):
    """Formation order vs the paper's literal random order (DESIGN.md §5)."""

    def run():
        rows = []
        for order in ("formation", "random"):
            ios = []
            for name in WORKLOADS:
                w = get_workload(name)
                params = WorkloadParams(
                    chunk_elems=bench_config.chunk_elems,
                    data_chunks=bench_config.data_chunks,
                )
                nest, ds = w.build(params)
                h = bench_config.build_hierarchy()
                mapper = InterProcessorMapper(chunk_order=order)
                mapping = mapper.map(nest, ds, h, make_rng(7))
                streams = build_client_streams(mapping, nest, ds)
                fs = ParallelFileSystem(
                    bench_config.num_storage_nodes,
                    bench_config.chunk_elems * 1024,
                    bench_config.disk,
                )
                sim = simulate(
                    streams,
                    h,
                    fs,
                    latency=bench_config.latency,
                    iterations_per_client=mapping.iteration_counts(),
                )
                ios.append(sim.io_latency_ms)
            rows.append([order, f"{np.mean(ios):.0f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report_sink(
        ExperimentReport(
            "Ablation chunk-order",
            "Unscheduled inter chunk order: mean io latency (ms)",
            ["order", "io (ms)"],
            rows,
            notes=[
                "random is the paper's literal wording; formation order is the"
                " default at this scale (see mapper docstring)"
            ],
        )
    )


def test_gains_persist_with_prefetch_and_writeback(
    benchmark, bench_config, report_sink
):
    """The mapping's advantage survives read-ahead and write-back costs."""

    def run():
        rows = []
        for label, overrides in (
            ("baseline", {}),
            ("prefetch=2", {"prefetch_degree": 2}),
            ("writeback", {"writeback": True}),
            ("both", {"prefetch_degree": 2, "writeback": True}),
        ):
            cfg = replace(bench_config, **overrides)
            io = _avg_io(cfg)["inter"]
            rows.append([label, f"{io:.3f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report_sink(
        ExperimentReport(
            "Ablation prefetch-writeback",
            "Engine extensions: inter io normalized to original",
            ["configuration", "inter io"],
            rows,
            notes=[
                "sequential read-ahead helps the Original's streaming more,"
                " so the normalized gain shrinks but persists"
            ],
        )
    )
    assert all(float(r[1]) < 1.0 for r in rows)
