"""Benchmark + regeneration of Figure 12 (topology sensitivity)."""

from repro.experiments import figure12


def test_figure12(benchmark, small_config, report_sink):
    report = benchmark.pedantic(
        figure12.run, args=(small_config,), rounds=1, iterations=1
    )
    report_sink(report)
    assert len(report.rows) == len(figure12.TOPOLOGIES)
    # Paper's w/x trend for the scheduled scheme: deeper client fan-in
    # (16,4,4) at least matches the default (16,8,4).
    s = report.summary
    assert s["inter+sched_io_16_4_4"] <= s["inter+sched_io_16_8_4"] + 0.02
