"""Benchmark + regeneration of Figure 18 (scheduling enhancement)."""

from repro.experiments import figure18


def test_figure18(benchmark, bench_config, report_sink):
    report = benchmark.pedantic(
        figure18.run, args=(bench_config,), rounds=1, iterations=1
    )
    report_sink(report)
    s = report.summary
    # Paper: scheduling cuts L1 misses (27.8% avg) and lifts io/exec gains.
    assert s["sched_L1_misses"] < 0.95
    assert s["sched_io"] < 1.0
    assert s["sched_io"] <= s["unsched_io"] + 0.03
