"""Perf-regression gate: a fresh benchmark document vs. the pinned one.

Compares a freshly generated benchmark document against the committed
baseline, cell by cell.  Two record kinds are understood:

* ``repro-bench-scenarios`` (``bench_scenarios.py``) — cells matched
  on ``(scenario, policies)``;
* ``repro-bench-campaign`` (``bench_campaign.py``) — cells matched on
  the campaign cell label, plus the top-level ``report_digest`` and
  ``manifest_digest`` which must match exactly.

The per-cell rules are the same for both:

* **digests must match exactly** — a changed digest is a determinism
  break, not a slowdown, and always fails;
* **wall time gets a generous gate** — CI machines are noisy, so only
  order-of-magnitude regressions fail: a cell must be both
  ``--tolerance`` times slower than the baseline *and* slower than the
  ``--floor`` in absolute seconds (sub-floor cells never fail on time).

Exit code 0 when everything holds, 1 with a per-cell report otherwise::

    python benchmarks/bench_scenarios.py -o fresh.json
    python benchmarks/check_bench_regression.py BENCH_scenarios.json fresh.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any


KNOWN_RECORDS = ("repro-bench-scenarios", "repro-bench-campaign")

#: Whole-document digests gated exactly (when the record carries them).
DOC_DIGESTS = ("report_digest", "manifest_digest")


def _cells(doc: dict[str, Any]) -> dict[Any, dict[str, Any]]:
    """Index rows by their record kind's natural cell identity."""
    if doc.get("record") == "repro-bench-campaign":
        return {row["cell"]: row for row in doc.get("rows", [])}
    return {
        (row["scenario"], json.dumps(row["policies"])): row
        for row in doc.get("rows", [])
    }


def _cell_name(key: Any, row: dict[str, Any]) -> str:
    if isinstance(key, str):
        return key
    return f"{key[0]} / {row['policies'] or 'default'}"


def compare(
    baseline: dict[str, Any],
    fresh: dict[str, Any],
    tolerance: float,
    floor_s: float,
) -> list[str]:
    """Every gate violation as a human-readable line (empty = pass)."""
    problems: list[str] = []
    for digest_field in DOC_DIGESTS:
        if digest_field not in baseline and digest_field not in fresh:
            continue
        if baseline.get(digest_field) != fresh.get(digest_field):
            problems.append(
                f"{digest_field}: {str(baseline.get(digest_field))[:12]} -> "
                f"{str(fresh.get(digest_field))[:12]} (determinism failure)"
            )
    base_cells, fresh_cells = _cells(baseline), _cells(fresh)
    for key in base_cells.keys() - fresh_cells.keys():
        problems.append(f"cell {key} missing from the fresh run")
    for key in fresh_cells.keys() - base_cells.keys():
        problems.append(f"cell {key} not in the baseline (re-pin it?)")
    for key in sorted(base_cells.keys() & fresh_cells.keys()):
        base, now = base_cells[key], fresh_cells[key]
        name = _cell_name(key, base)
        if base["digest"] != now["digest"]:
            problems.append(
                f"{name}: DIGEST CHANGED {base['digest'][:12]} -> "
                f"{now['digest'][:12]} (determinism failure)"
            )
        base_s, now_s = float(base["seconds"]), float(now["seconds"])
        if now_s > floor_s and now_s > base_s * tolerance:
            problems.append(
                f"{name}: {now_s:.3f}s vs baseline {base_s:.3f}s "
                f"(> {tolerance:g}x and > {floor_s:g}s floor)"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_scenarios.json")
    parser.add_argument("fresh", help="freshly generated benchmark document")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=10.0,
        help="max allowed seconds ratio vs baseline (default 10x)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=1.0,
        help="absolute seconds below which a cell never fails (default 1.0)",
    )
    args = parser.parse_args(argv)
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.fresh) as fh:
        fresh = json.load(fh)
    for doc, path in ((baseline, args.baseline), (fresh, args.fresh)):
        if doc.get("record") not in KNOWN_RECORDS:
            print(f"{path}: not one of {', '.join(KNOWN_RECORDS)}")
            return 1
    if baseline.get("record") != fresh.get("record"):
        print(
            f"record mismatch: {baseline.get('record')} vs "
            f"{fresh.get('record')}"
        )
        return 1

    problems = compare(baseline, fresh, args.tolerance, args.floor)
    checked = len(_cells(baseline))
    if problems:
        print(f"perf gate FAILED ({len(problems)} problem(s), {checked} cells):")
        for p in problems:
            print(f"  - {p}")
        return 1
    print(
        f"perf gate passed: {checked} cells, digests identical, "
        f"no cell beyond {args.tolerance:g}x baseline"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
