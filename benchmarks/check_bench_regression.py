"""Perf-regression gate: a fresh scenario benchmark vs. the pinned one.

Compares a freshly generated ``bench_scenarios.py`` document against
the committed ``BENCH_scenarios.json`` baseline, cell by cell
(matched on ``(scenario, policies)``):

* **digests must match exactly** — a changed digest is a determinism
  break, not a slowdown, and always fails;
* **wall time gets a generous gate** — CI machines are noisy, so only
  order-of-magnitude regressions fail: a cell must be both
  ``--tolerance`` times slower than the baseline *and* slower than the
  ``--floor`` in absolute seconds (sub-floor cells never fail on time).

Exit code 0 when everything holds, 1 with a per-cell report otherwise::

    python benchmarks/bench_scenarios.py -o fresh.json
    python benchmarks/check_bench_regression.py BENCH_scenarios.json fresh.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any


def _cells(doc: dict[str, Any]) -> dict[tuple[str, str], dict[str, Any]]:
    """Index rows by (scenario, canonicalised policies)."""
    return {
        (row["scenario"], json.dumps(row["policies"])): row
        for row in doc.get("rows", [])
    }


def compare(
    baseline: dict[str, Any],
    fresh: dict[str, Any],
    tolerance: float,
    floor_s: float,
) -> list[str]:
    """Every gate violation as a human-readable line (empty = pass)."""
    problems: list[str] = []
    base_cells, fresh_cells = _cells(baseline), _cells(fresh)
    for key in base_cells.keys() - fresh_cells.keys():
        problems.append(f"cell {key} missing from the fresh run")
    for key in fresh_cells.keys() - base_cells.keys():
        problems.append(f"cell {key} not in the baseline (re-pin it?)")
    for key in sorted(base_cells.keys() & fresh_cells.keys()):
        base, now = base_cells[key], fresh_cells[key]
        name = f"{key[0]} / {base['policies'] or 'default'}"
        if base["digest"] != now["digest"]:
            problems.append(
                f"{name}: DIGEST CHANGED {base['digest'][:12]} -> "
                f"{now['digest'][:12]} (determinism failure)"
            )
        base_s, now_s = float(base["seconds"]), float(now["seconds"])
        if now_s > floor_s and now_s > base_s * tolerance:
            problems.append(
                f"{name}: {now_s:.3f}s vs baseline {base_s:.3f}s "
                f"(> {tolerance:g}x and > {floor_s:g}s floor)"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_scenarios.json")
    parser.add_argument("fresh", help="freshly generated benchmark document")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=10.0,
        help="max allowed seconds ratio vs baseline (default 10x)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=1.0,
        help="absolute seconds below which a cell never fails (default 1.0)",
    )
    args = parser.parse_args(argv)
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.fresh) as fh:
        fresh = json.load(fh)
    for doc, path in ((baseline, args.baseline), (fresh, args.fresh)):
        if doc.get("record") != "repro-bench-scenarios":
            print(f"{path}: not a repro-bench-scenarios document")
            return 1

    problems = compare(baseline, fresh, args.tolerance, args.floor)
    checked = len(_cells(baseline))
    if problems:
        print(f"perf gate FAILED ({len(problems)} problem(s), {checked} cells):")
        for p in problems:
            print(f"  - {p}")
        return 1
    print(
        f"perf gate passed: {checked} cells, digests identical, "
        f"no cell beyond {args.tolerance:g}x baseline"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
