"""Benchmarks for the repro.exec runtime: pool speedup and cache warmth.

Two wall-clock comparisons on the Figure 12 topology sweep:

* **workers 1 vs 4** — the sweep's tasks are embarrassingly parallel,
  so a 4-worker pool should beat the serial run (the exact ratio is
  machine-dependent; the assertion only requires parity-or-better with
  slack, the printed table carries the measured ratio);
* **cold vs warm cache** — a second run against a populated
  :class:`ResultStore` should be dominated by store reads, far faster
  than simulating, and must simulate nothing at all.
"""

from __future__ import annotations

import time

import pytest

from repro.exec import (
    ExperimentExecutor,
    ResultStore,
    SweepPlan,
    execute_plan,
)
from repro.experiments import figure12
from repro.experiments.report import ExperimentReport
from repro.telemetry import MetricsRegistry, use_registry


def _figure12_plan(config) -> SweepPlan:
    plan = SweepPlan()
    for cfg in figure12.sweep_configs(config):
        plan.add_suite(cfg, figure12.VERSIONS_USED)
    return plan


@pytest.fixture(scope="module")
def sweep_plan(small_config):
    return _figure12_plan(small_config)


def test_exec_pool_speedup(benchmark, sweep_plan, report_sink):
    t0 = time.perf_counter()
    serial = execute_plan(sweep_plan, executor=ExperimentExecutor(workers=1))
    serial_s = time.perf_counter() - t0

    def pooled():
        return execute_plan(
            sweep_plan, executor=ExperimentExecutor(workers=4)
        )

    t0 = time.perf_counter()
    parallel = benchmark.pedantic(pooled, rounds=1, iterations=1)
    parallel_s = time.perf_counter() - t0

    assert set(parallel) == set(serial)
    ratio = serial_s / parallel_s if parallel_s else float("inf")
    report_sink(
        ExperimentReport(
            "bench exec pool",
            "Figure 12 sweep: serial vs 4-worker pool",
            ["workers", "tasks", "wall (s)", "speedup"],
            [
                ["1", len(sweep_plan), f"{serial_s:.2f}", "1.00x"],
                ["4", len(sweep_plan), f"{parallel_s:.2f}", f"{ratio:.2f}x"],
            ],
            summary={"speedup": ratio},
        )
    )
    # Machine-dependent: require no worse than serial (with 25% slack
    # for pool start-up on small sweeps), not a specific speedup.
    assert parallel_s <= serial_s * 1.25


def test_exec_cache_warm_vs_cold(benchmark, sweep_plan, tmp_path, report_sink):
    store = ResultStore(tmp_path / "bench-cache")

    t0 = time.perf_counter()
    cold = execute_plan(sweep_plan, store=store)
    cold_s = time.perf_counter() - t0

    registry = MetricsRegistry()

    def warm():
        with use_registry(registry):
            return execute_plan(sweep_plan, store=store)

    t0 = time.perf_counter()
    warm_results = benchmark.pedantic(warm, rounds=1, iterations=1)
    warm_s = time.perf_counter() - t0

    assert set(warm_results) == set(cold)
    assert registry.counter("simulator.simulations").value == 0
    ratio = cold_s / warm_s if warm_s else float("inf")
    report_sink(
        ExperimentReport(
            "bench exec cache",
            "Figure 12 sweep: cold vs warm result store",
            ["cache", "tasks", "wall (s)", "speedup"],
            [
                ["cold", len(sweep_plan), f"{cold_s:.2f}", "1.00x"],
                ["warm", len(sweep_plan), f"{warm_s:.2f}", f"{ratio:.2f}x"],
            ],
            summary={"speedup": ratio},
        )
    )
    assert warm_s < cold_s
