"""Benchmark + regeneration of Figure 11 (normalized I/O and exec time)."""

from repro.experiments import figure11


def test_figure11(benchmark, bench_config, report_sink):
    report = benchmark.pedantic(
        figure11.run, args=(bench_config,), rounds=1, iterations=1
    )
    report_sink(report)
    s = report.summary
    # Paper: inter -26.3% io / -18.9% exec; intra -6.8% / -3.5%.
    assert s["inter_io_latency_improvement"] > 0.10
    assert s["inter_execution_time_improvement"] > 0.08
    assert (
        s["inter_io_latency_improvement"] > s["intra_io_latency_improvement"]
    )
    # I/O gains exceed end-to-end gains (compute dilutes them).
    assert (
        s["inter_io_latency_improvement"]
        >= s["inter_execution_time_improvement"]
    )
