"""Benchmark + regeneration of Figure 10 (normalized per-level misses)."""

from repro.experiments import figure10


def test_figure10(benchmark, bench_config, report_sink):
    report = benchmark.pedantic(
        figure10.run, args=(bench_config,), rounds=1, iterations=1
    )
    report_sink(report)
    s = report.summary
    # Paper shape: inter reduces misses at every level; intra's effect on
    # the shared levels is far smaller than inter's.
    assert s["inter_L1"] < 1.0
    assert s["inter_L2"] < 1.0
    assert s["inter_L3"] < 1.0
    assert s["inter_L2"] < s["intra_L2"]
    assert s["inter_L3"] < s["intra_L3"]
