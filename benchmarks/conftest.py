"""Shared benchmark fixtures and result reporting.

Every figure/table benchmark regenerates its experiment (at a reduced
topology with the paper's fan-in ratios), prints the same rows the paper
reports, and saves the rendered table under ``benchmarks/output/``.
Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to see the
tables inline).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.config import scaled_config

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def bench_config():
    """Quarter-scale topology: 16 clients / 8 I/O nodes / 4 storage nodes."""
    return scaled_config(4)


@pytest.fixture(scope="session")
def small_config():
    """Eighth-scale topology for the heavier sweeps."""
    return scaled_config(8)


@pytest.fixture(scope="session")
def report_sink():
    OUTPUT_DIR.mkdir(exist_ok=True)

    def sink(report) -> None:
        text = report.render()
        print("\n" + text)
        slug = report.experiment_id.lower().replace(" ", "").replace("§", "s")
        (OUTPUT_DIR / f"{slug}.txt").write_text(text + "\n")

    return sink
