"""Benchmark for the sharded serving tier: 1 shard vs 3, same load.

Spins up real :class:`~repro.shard.cluster.ShardCluster` deployments —
worker *subprocesses* behind the router, exactly what ``repro shard
serve`` runs — and drives the same closed-loop cold load (every key
distinct, so every request simulates) through each:

* **1 shard** — the single-server baseline, all simulations serial;
* **3 shards** — the ring spreads the keys, three worker processes
  simulate concurrently.

The document records the host's ``cpu_count`` alongside the measured
throughputs because the speedup claim is a *parallelism* claim: on a
single-core runner three workers time-share one core and the ratio is
noise.  ``check_shard_gate.py`` therefore always enforces digest
identity (routing must never change results) but only enforces the
speedup floor when the measuring host has enough cores.

Two entry points:

* ``pytest benchmarks/bench_shard.py --benchmark-only`` — the usual
  table via ``report_sink``;
* ``python benchmarks/bench_shard.py -o BENCH_shard.json`` —
  standalone, writing the machine-readable document the CI perf-gate
  job compares against the pinned copy.
"""

from __future__ import annotations

import argparse
import json
import os
import threading
import time
from typing import Any

from repro.serve.client import ServeClient

SCALE = 8
CLIENTS = 6
WORKLOADS = (
    "hf",
    "sar",
    "contour",
    "astro",
    "e_elem",
    "apsi",
    "madbench2",
    "wupwise",
)
VERSIONS = ("original", "intra", "inter")
KEYS = [(w, v) for w in WORKLOADS for v in VERSIONS]  # 24 distinct keys


def _closed_loop(url: str) -> tuple[float, dict[tuple, str]]:
    """Drain KEYS through CLIENTS closed-loop threads; returns wall, digests."""
    pending = list(KEYS)
    lock = threading.Lock()
    digests: dict[tuple, str] = {}
    errors: list[Exception] = []

    def worker():
        with ServeClient(url, timeout=300.0) as client:
            while True:
                with lock:
                    if not pending:
                        return
                    key = pending.pop()
                try:
                    resp = client.experiment(key[0], key[1], scale=SCALE)
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    with lock:
                        errors.append(exc)
                    return
                with lock:
                    digests[key] = resp.digest

    threads = [
        threading.Thread(target=worker, daemon=True) for _ in range(CLIENTS)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(600.0)
    wall = time.perf_counter() - t0
    if errors:
        raise errors[0]
    assert len(digests) == len(KEYS), "a load thread died early"
    return wall, digests


def _run_cluster_pass(shards: int, root) -> dict[str, Any]:
    from repro.shard.cluster import ShardCluster

    cluster = ShardCluster(
        shards=shards, root=root, port=0, default_scale=SCALE
    )
    cluster.start()
    router_thread = threading.Thread(
        target=lambda: cluster.router.serve_forever(install_signals=False),
        name=f"bench-router-{shards}",
        daemon=True,
    )
    router_thread.start()
    try:
        assert cluster.router.ready.wait(60.0), "router never became ready"
        wall, digests = _closed_loop(f"http://127.0.0.1:{cluster.port}")
    finally:
        cluster.router.request_shutdown()
        router_thread.join(60.0)
        cluster.stop()
    return {
        "shards": shards,
        "requests": len(KEYS),
        "seconds": round(wall, 3),
        "rps": round(len(KEYS) / wall, 2),
        "digests": digests,
    }


def run_bench(tmp_root) -> dict[str, Any]:
    import pathlib

    tmp_root = pathlib.Path(tmp_root)
    single = _run_cluster_pass(1, tmp_root / "store-1")
    triple = _run_cluster_pass(3, tmp_root / "store-3")
    if single["digests"] != triple["digests"]:
        raise AssertionError(
            "sharding changed results: 1-shard and 3-shard digests differ"
        )
    keys = [
        {"workload": w, "version": v, "digest": single["digests"][(w, v)]}
        for w, v in KEYS
    ]
    for p in (single, triple):
        del p["digests"]
    return {
        "record": "repro-bench-shard",
        "scale": SCALE,
        "clients": CLIENTS,
        "cpu_count": os.cpu_count() or 1,
        "keys": keys,
        "passes": [single, triple],
        "speedup": round(triple["rps"] / single["rps"], 3),
    }


# -- pytest entry -------------------------------------------------------------------


def test_shard_scale_out_bench(benchmark, report_sink, tmp_path):
    from repro.experiments.report import ExperimentReport

    doc = benchmark.pedantic(
        lambda: run_bench(tmp_path), rounds=1, iterations=1
    )
    rows = [
        [str(p["shards"]), str(p["requests"]), f"{p['seconds']:.2f}",
         f"{p['rps']:.1f}"]
        for p in doc["passes"]
    ]
    report_sink(
        ExperimentReport(
            "bench shard",
            f"cold closed loop, {doc['clients']} clients, "
            f"{len(doc['keys'])} distinct keys (scale {doc['scale']}, "
            f"{doc['cpu_count']} cores)",
            ["shards", "requests", "s", "req/s"],
            rows,
            summary={"speedup": doc["speedup"]},
        )
    )


# -- standalone entry ---------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o",
        "--output",
        default="BENCH_shard.json",
        help="where to write the benchmark document",
    )
    args = parser.parse_args(argv)
    import tempfile

    with tempfile.TemporaryDirectory(prefix="bench-shard-") as td:
        doc = run_bench(td)
    with open(args.output, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for p in doc["passes"]:
        print(
            f"{p['shards']} shard(s): {p['requests']} requests in "
            f"{p['seconds']:.2f}s = {p['rps']:.1f} req/s"
        )
    print(
        f"speedup {doc['speedup']:.2f}x on {doc['cpu_count']} core(s) "
        f"-> {args.output}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
