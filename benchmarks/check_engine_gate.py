"""Engine perf + equivalence gate: fresh bench_engine vs the pinned one.

Compares a freshly generated ``bench_engine.py`` document against the
committed ``BENCH_engine.json`` baseline, cell by cell (matched on
``(workload, version, prefetch, writeback)``):

* **digests must match the baseline exactly** — the digest is the
  shared reference/fast result hash (bench_engine aborts on a
  reference-vs-fast mismatch, so a *baseline* mismatch means the
  simulation semantics changed without re-pinning);
* **the speedup must hold** — the fresh run's geomean speedup must
  reach ``--min-speedup`` (CI uses 5x), and no single cell may fall
  under ``--row-floor`` (catastrophic-regression catch; the write-back
  cells keep per-access dirty bookkeeping and sit below the geomean by
  design, which is why the per-row bar is lower).

Exit code 0 when everything holds, 1 with a per-cell report otherwise::

    python benchmarks/bench_engine.py -o fresh.json
    python benchmarks/check_engine_gate.py BENCH_engine.json fresh.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any


def _cells(doc: dict[str, Any]) -> dict[tuple, dict[str, Any]]:
    return {
        (row["workload"], row["version"], row["prefetch"], row["writeback"]): row
        for row in doc.get("rows", [])
    }


def compare(
    baseline: dict[str, Any],
    fresh: dict[str, Any],
    min_speedup: float,
    row_floor: float,
) -> list[str]:
    """Every gate violation as a human-readable line (empty = pass)."""
    problems: list[str] = []
    base_cells, fresh_cells = _cells(baseline), _cells(fresh)
    for key in base_cells.keys() - fresh_cells.keys():
        problems.append(f"cell {key} missing from the fresh run")
    for key in fresh_cells.keys() - base_cells.keys():
        problems.append(f"cell {key} not in the baseline (re-pin it?)")
    for key in sorted(base_cells.keys() & fresh_cells.keys()):
        base, now = base_cells[key], fresh_cells[key]
        name = f"{key[0]}/{key[1]} pf={key[2]} wb={'y' if key[3] else 'n'}"
        if base["digest"] != now["digest"]:
            problems.append(
                f"{name}: DIGEST CHANGED {base['digest'][:12]} -> "
                f"{now['digest'][:12]} (semantics drifted; re-pin only if "
                f"intentional)"
            )
        if float(now["speedup"]) < row_floor:
            problems.append(
                f"{name}: speedup {now['speedup']:.1f}x under the "
                f"{row_floor:g}x per-cell floor"
            )
    geo = float(fresh.get("geomean_speedup", 0.0))
    if geo < min_speedup:
        problems.append(
            f"geomean speedup {geo:.1f}x under the required {min_speedup:g}x"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_engine.json")
    parser.add_argument("fresh", help="freshly generated benchmark document")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="required fresh geomean fast-vs-reference speedup (default 5x)",
    )
    parser.add_argument(
        "--row-floor",
        type=float,
        default=2.0,
        help="minimum per-cell speedup before failing outright (default 2x)",
    )
    args = parser.parse_args(argv)
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.fresh) as fh:
        fresh = json.load(fh)
    for doc, path in ((baseline, args.baseline), (fresh, args.fresh)):
        if doc.get("record") != "repro-bench-engine":
            print(f"{path}: not a repro-bench-engine document")
            return 1

    problems = compare(baseline, fresh, args.min_speedup, args.row_floor)
    checked = len(_cells(baseline))
    if problems:
        print(f"engine gate FAILED ({len(problems)} problem(s), {checked} cells):")
        for p in problems:
            print(f"  - {p}")
        return 1
    print(
        f"engine gate passed: {checked} cells bit-identical, geomean "
        f"{fresh.get('geomean_speedup'):.1f}x >= {args.min_speedup:g}x"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
