"""Benchmark: the vectorized engine vs the reference engine.

Runs a matrix of suite workloads (with and without prefetching) through
both simulation engines on identical pre-built inputs, reporting the
per-cell wall time, the speedup, and the shared result digest — the two
engines must produce bit-identical serialised results for a cell to be
reported at all (a digest mismatch aborts the run).

Two entry points:

* ``pytest benchmarks/bench_engine.py --benchmark-only`` — the usual
  table via ``report_sink``;
* ``python benchmarks/bench_engine.py -o BENCH_engine.json`` —
  standalone, writing the machine-readable document the CI
  engine-equivalence job regenerates and gates with
  ``check_engine_gate.py`` (the repo pins a copy).

Timing is best-of-``--repeats`` per engine on a prepared experiment
(mapping excluded), so the ratio isolates exactly what the fast engine
replaces: the simulation hot loop.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from typing import Any

from repro.experiments.config import scaled_config
from repro.simulator.engines import resolve_engine
from repro.simulator.runner import prepare_experiment
from repro.util.fingerprint import canonical_json
from repro.workloads.suite import get_workload

#: (workload, version, prefetch_degree) cells. Chosen to cover the
#: engine's three hot loops: lean tree (no prefetch), tree+prefetch,
#: and — via the writeback cell — the masked write-back loop.
CASES: tuple[tuple[str, str, int, bool], ...] = (
    ("hf", "inter+sched", 0, False),
    ("hf", "original", 0, False),
    ("contour", "original", 0, False),
    ("madbench2", "inter+sched", 0, False),
    ("madbench2", "inter+sched", 4, False),
    ("astro", "inter+sched", 4, False),
    ("e_elem", "original", 0, False),
    ("hf", "inter+sched", 2, True),
)

SCALE = 4


def _digest(sim) -> str:
    from repro.simulator.serialization import _sim_to_dict

    material = canonical_json(_sim_to_dict(sim))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def _time_engine(engine, prep, config, repeats: int):
    """Best-of-``repeats`` wall time; returns (seconds, result)."""
    best = float("inf")
    sim = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        sim = engine(
            prep.streams,
            prep.hierarchy,
            prep.filesystem,
            latency=config.latency,
            iterations_per_client=prep.iterations_per_client,
            write_masks=prep.write_masks,
            prefetch_degree=config.prefetch_degree,
            num_data_chunks=prep.num_data_chunks,
        )
        best = min(best, time.perf_counter() - t0)
    return best, sim


def _run_cell(
    workload: str, version: str, prefetch: int, writeback: bool,
    repeats: int, scale: int,
) -> dict[str, Any]:
    import dataclasses

    config = dataclasses.replace(
        scaled_config(scale), prefetch_degree=prefetch, writeback=writeback
    )
    prep = prepare_experiment(get_workload(workload), config, version)
    reference = resolve_engine("reference")
    fast = resolve_engine("fast")
    ref_s, ref_sim = _time_engine(reference, prep, config, repeats)
    fast_s, fast_sim = _time_engine(fast, prep, config, repeats)
    ref_digest, fast_digest = _digest(ref_sim), _digest(fast_sim)
    if ref_digest != fast_digest:
        raise SystemExit(
            f"ENGINE DIVERGENCE on {workload}/{version} pf={prefetch} "
            f"wb={writeback}: {ref_digest[:12]} != {fast_digest[:12]}"
        )
    return {
        "workload": workload,
        "version": version,
        "prefetch": prefetch,
        "writeback": writeback,
        "requests": sum(len(s) for s in prep.streams.values()),
        "reference_s": round(ref_s, 6),
        "fast_s": round(fast_s, 6),
        "speedup": round(ref_s / fast_s, 2) if fast_s else float("inf"),
        "digest": ref_digest,
    }


def run_matrix(repeats: int = 5, scale: int = SCALE) -> dict[str, Any]:
    rows = [
        _run_cell(w, v, pf, wb, repeats, scale) for w, v, pf, wb in CASES
    ]
    speedups = [r["speedup"] for r in rows]
    geomean = 1.0
    for s in speedups:
        geomean *= s
    geomean **= 1.0 / len(speedups)
    return {
        "record": "repro-bench-engine",
        "scale": scale,
        "repeats": repeats,
        "geomean_speedup": round(geomean, 2),
        "max_speedup": max(speedups),
        "min_speedup": min(speedups),
        "rows": rows,
    }


# -- pytest entry -------------------------------------------------------------------


def test_engine_speedup_matrix(benchmark, report_sink):
    from repro.experiments.report import ExperimentReport

    doc = benchmark.pedantic(lambda: run_matrix(repeats=3), rounds=1, iterations=1)
    table = [
        [
            row["workload"],
            row["version"],
            str(row["prefetch"]),
            "y" if row["writeback"] else "n",
            f"{row['reference_s'] * 1e3:.2f}",
            f"{row['fast_s'] * 1e3:.2f}",
            f"{row['speedup']:.1f}x",
        ]
        for row in doc["rows"]
    ]
    # Digest equality is enforced inside every cell; here assert the
    # speedup the subsystem exists for actually materialises.
    assert doc["max_speedup"] >= 5.0
    report_sink(
        ExperimentReport(
            "bench engine",
            f"fast vs reference engine (scale {SCALE}, "
            f"geomean {doc['geomean_speedup']:.1f}x)",
            ["workload", "version", "pf", "wb", "ref ms", "fast ms", "speedup"],
            table,
        )
    )


# -- standalone entry ---------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o",
        "--output",
        default="BENCH_engine.json",
        help="where to write the benchmark document",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="timing repeats per engine per cell (best-of, default 5)",
    )
    args = parser.parse_args(argv)
    doc = run_matrix(repeats=args.repeats)
    with open(args.output, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for row in doc["rows"]:
        print(
            f"{row['workload']:<10} {row['version']:<12} pf={row['prefetch']} "
            f"wb={'y' if row['writeback'] else 'n'}  "
            f"ref {row['reference_s'] * 1e3:8.2f}ms  "
            f"fast {row['fast_s'] * 1e3:7.2f}ms  {row['speedup']:5.1f}x"
        )
    print(
        f"geomean {doc['geomean_speedup']:.1f}x, "
        f"min {doc['min_speedup']:.1f}x, max {doc['max_speedup']:.1f}x"
    )
    print(f"wrote {args.output} ({len(doc['rows'])} cells)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
