"""Microbenchmarks of the library's hot components.

These use pytest-benchmark's statistics (multiple rounds) to track the
performance of the pipeline stages: tagging/chunk formation, affinity
graph construction, hierarchical clustering, Fig. 15 scheduling, stream
generation and the simulation engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.chunking import form_iteration_chunks
from repro.core.clustering import distribute_iterations
from repro.core.graph import build_affinity_graph
from repro.core.mapper import InterProcessorMapper
from repro.core.scheduling import schedule_clients
from repro.simulator.engine import simulate
from repro.simulator.streams import build_client_streams
from repro.storage.filesystem import ParallelFileSystem
from repro.util.rng import make_rng
from repro.workloads.base import WorkloadParams
from repro.workloads.suite import get_workload


@pytest.fixture(scope="module")
def setup(bench_config):
    w = get_workload("hf")
    params = WorkloadParams(
        chunk_elems=bench_config.chunk_elems, data_chunks=bench_config.data_chunks
    )
    nest, ds = w.build(params)
    hierarchy = bench_config.build_hierarchy()
    chunk_set = form_iteration_chunks(nest, ds)
    distribution = distribute_iterations(chunk_set, hierarchy, 0.10)
    mapping = InterProcessorMapper().map(nest, ds, hierarchy, make_rng(1))
    streams = build_client_streams(mapping, nest, ds)
    return {
        "config": bench_config,
        "nest": nest,
        "ds": ds,
        "hierarchy": hierarchy,
        "chunk_set": chunk_set,
        "distribution": distribution,
        "mapping": mapping,
        "streams": streams,
    }


def test_chunk_formation(benchmark, setup):
    result = benchmark(form_iteration_chunks, setup["nest"], setup["ds"])
    assert result.num_chunks > 0


def test_affinity_graph(benchmark, setup):
    g = benchmark(build_affinity_graph, setup["chunk_set"])
    assert g.num_nodes == setup["chunk_set"].num_chunks


def test_hierarchical_distribution(benchmark, setup):
    dist = benchmark(
        distribute_iterations, setup["chunk_set"], setup["hierarchy"], 0.10
    )
    assert dist.num_clients == setup["hierarchy"].num_clients


def test_scheduling(benchmark, setup):
    sched = benchmark(
        schedule_clients, setup["distribution"], setup["hierarchy"], 0.5, 0.5
    )
    assert len(sched) == setup["hierarchy"].num_clients


def test_stream_generation(benchmark, setup):
    streams = benchmark(
        build_client_streams, setup["mapping"], setup["nest"], setup["ds"]
    )
    assert len(streams) == setup["hierarchy"].num_clients


def test_simulation_engine(benchmark, setup):
    cfg = setup["config"]

    def run():
        fs = ParallelFileSystem(
            cfg.num_storage_nodes, cfg.chunk_elems * 1024, cfg.disk
        )
        return simulate(
            setup["streams"],
            setup["hierarchy"],
            fs,
            latency=cfg.latency,
            iterations_per_client=setup["mapping"].iteration_counts(),
        )

    res = benchmark(run)
    assert res.total_accesses() > 0


def test_simulation_engine_fast(benchmark, setup):
    """The vectorized engine on the same inputs as
    ``test_simulation_engine`` — the two medians are the speedup the
    engine gate (``bench_engine.py`` / ``check_engine_gate.py``) pins."""
    from repro.simulator.fast import simulate as fast_simulate

    cfg = setup["config"]

    def run():
        fs = ParallelFileSystem(
            cfg.num_storage_nodes, cfg.chunk_elems * 1024, cfg.disk
        )
        return fast_simulate(
            setup["streams"],
            setup["hierarchy"],
            fs,
            latency=cfg.latency,
            iterations_per_client=setup["mapping"].iteration_counts(),
        )

    res = benchmark(run)
    assert res.total_accesses() > 0


def test_simulation_engine_null_recorder(benchmark, setup):
    """Tracing hook disabled: must not measurably slow the engine down
    compared to ``test_simulation_engine`` (the recorder is normalized
    away before the hot loop)."""
    from repro.trace.recorder import NullRecorder

    cfg = setup["config"]
    recorder = NullRecorder()

    def run():
        fs = ParallelFileSystem(
            cfg.num_storage_nodes, cfg.chunk_elems * 1024, cfg.disk
        )
        return simulate(
            setup["streams"],
            setup["hierarchy"],
            fs,
            latency=cfg.latency,
            iterations_per_client=setup["mapping"].iteration_counts(),
            recorder=recorder,
        )

    res = benchmark(run)
    assert res.total_accesses() > 0


def test_simulation_engine_live_registry(benchmark, setup):
    """Telemetry enabled: metrics bridge only at the end of ``simulate``,
    so a live registry must cost about the same as the null registry
    (compare against ``test_simulation_engine``, which runs with
    telemetry disabled)."""
    from repro.telemetry import MetricsRegistry, use_registry

    cfg = setup["config"]

    def run():
        fs = ParallelFileSystem(
            cfg.num_storage_nodes, cfg.chunk_elems * 1024, cfg.disk
        )
        with use_registry(MetricsRegistry()):
            return simulate(
                setup["streams"],
                setup["hierarchy"],
                fs,
                latency=cfg.latency,
                iterations_per_client=setup["mapping"].iteration_counts(),
            )

    res = benchmark(run)
    assert res.total_accesses() > 0


def test_full_inter_mapping(benchmark, setup):
    mapper = InterProcessorMapper(schedule=True)

    def run():
        return mapper.map(
            setup["nest"], setup["ds"], setup["hierarchy"], make_rng(1)
        )

    mapping = benchmark(run)
    mapping.validate(setup["nest"].num_iterations)
