#!/usr/bin/env python
"""Where does the Inter-processor mapping's win come from?

Uses the analysis package to attribute one workload's improvement to
the classic miss sources:

* compulsory — per-client footprints (the mapping co-locates sharers,
  so each client requests fewer distinct chunks);
* capacity — Mattson reuse-distance profiles of the request streams
  (the schedule moves revisits inside the private-cache window);
* sharing — the sharing matrix split by cache affinity (the paper's
  two rules: sharing belongs below shared caches).

Run:  python examples/explain_the_win.py [workload]
"""

import sys

import numpy as np

from repro.analysis.footprint import mapping_footprints
from repro.analysis.reuse import reuse_distance_profile
from repro.analysis.sharing import mapping_affinity_quality, sharing_matrix
from repro.experiments.config import scaled_config
from repro.simulator.runner import make_mapper, run_experiment
from repro.simulator.streams import build_client_streams
from repro.util.rng import derive_seed, make_rng
from repro.util.tables import format_table
from repro.workloads.base import WorkloadParams
from repro.workloads.suite import get_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "wupwise"
    config = scaled_config(8)
    workload = get_workload(name)
    params = WorkloadParams(
        chunk_elems=config.chunk_elems, data_chunks=config.data_chunks
    )
    nest, data_space = workload.build(params)
    l1 = config.capacity_chunks(0)

    rows = []
    for version in ("original", "inter", "inter+sched"):
        hierarchy = config.build_hierarchy()
        mapper = make_mapper(version, config)
        rng = make_rng(derive_seed(config.seed, name, version))
        mapping = mapper.map(nest, data_space, hierarchy, rng)

        footprints = mapping_footprints(mapping, nest, data_space)
        streams = build_client_streams(mapping, nest, data_space)
        profiles = [
            reuse_distance_profile(s) for s in streams.values() if len(s)
        ]
        mean_l1_hit = float(np.mean([p.hit_rate(l1) for p in profiles]))
        quality = mapping_affinity_quality(mapping, nest, data_space, hierarchy)
        measured = run_experiment(workload, config, version)

        rows.append(
            [
                version,
                sum(footprints.values()),
                f"{mean_l1_hit:.2f}",
                f"{quality.ratio:.2f}",
                f"{measured.io_latency_ms:.0f}",
            ]
        )

    print(
        format_table(
            [
                "version",
                "total footprint (compulsory)",
                f"mean Mattson L1 hit rate (C={l1})",
                "sibling/stranger sharing ratio",
                "measured io (ms)",
            ],
            rows,
            title=f"Attribution of the mapping win on '{name}'",
        )
    )
    print(
        "\nReading: the Inter-processor versions request fewer distinct"
        "\nchunks per client (compulsory), keep more revisits within the"
        "\nprivate-cache window (capacity, esp. with scheduling), and move"
        "\ndata sharing below the shared caches (ratio > original) —"
        "\ntogether explaining the measured I/O latency drop."
    )


if __name__ == "__main__":
    main()
