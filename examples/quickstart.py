#!/usr/bin/env python
"""Quickstart: map one loop nest four ways and compare cache behaviour.

Builds the paper's running example (Fig. 6: a multi-stride sweep over a
12-chunk disk-resident array), maps it onto the Fig. 7 storage cache
hierarchy (4 clients / 2 I/O nodes / 1 storage node) with each of the
paper's versions, and simulates the resulting block-request streams.

Run:  python examples/quickstart.py
"""

from repro import LatencyModel, figure6_workload, figure7_hierarchy
from repro.core.baselines import IntraProcessorMapper, OriginalMapper
from repro.core.mapper import InterProcessorMapper
from repro.simulator.engine import simulate
from repro.simulator.streams import build_client_streams
from repro.storage.filesystem import ParallelFileSystem
from repro.util.rng import make_rng
from repro.util.tables import format_table


def main() -> None:
    nest, data_space = figure6_workload(d=64)
    print(f"workload: {nest}")
    print(f"data space: {data_space}\n")

    mappers = [
        OriginalMapper(),
        IntraProcessorMapper(),
        InterProcessorMapper(),
        InterProcessorMapper(schedule=True),
    ]

    rows = []
    for mapper in mappers:
        hierarchy = figure7_hierarchy(capacities=(6, 8, 12))
        mapping = mapper.map(nest, data_space, hierarchy, make_rng(0))
        mapping.validate(nest.num_iterations)

        streams = build_client_streams(mapping, nest, data_space)
        filesystem = ParallelFileSystem(1, chunk_bytes=64 * 1024)
        result = simulate(
            streams,
            hierarchy,
            filesystem,
            latency=LatencyModel(),
            iterations_per_client=mapping.iteration_counts(),
        )
        rates = result.miss_rates()
        rows.append(
            [
                mapper.name,
                f"{rates['L1']:.2f}",
                f"{rates['L2']:.2f}",
                f"{rates['L3']:.2f}",
                result.disk_reads,
                f"{result.io_latency_ms:.1f}",
                f"{result.execution_time_ms:.1f}",
            ]
        )

    print(
        format_table(
            ["version", "L1 miss", "L2 miss", "L3 miss", "disk reads", "io (ms)", "exec (ms)"],
            rows,
            title="Fig. 6 workload on the Fig. 7 hierarchy",
        )
    )
    print(
        "\nThe Inter-processor mapping clusters iteration chunks that share"
        "\ndata chunks onto clients that share a cache, cutting shared-level"
        "\nmisses and disk reads versus the blocked Original mapping."
    )


if __name__ == "__main__":
    main()
