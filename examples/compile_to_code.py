#!/usr/bin/env python
"""Compile a nest to restructured per-client code (the paper's artifact).

The paper's scheme is a compiler pass: its real output is *source code*
— one loop-fragment sequence per client node, enumerating the client's
iteration chunks in schedule order, with synchronisation directives
inserted where dependences cross clients.  This example compiles the
Fig. 6 fragment and a dependent recurrence and prints both programs.

Run:  python examples/compile_to_code.py
"""

from repro.compiler import compile_nest
from repro.core.mapper import InterProcessorMapper
from repro.experiments.config import scaled_config
from repro.experiments.discussion import dependent_nest
from repro.workloads.paper_example import figure6_workload, figure7_hierarchy


def main() -> None:
    print("=== Fig. 6 fragment, compiled for the Fig. 7 hierarchy ===\n")
    nest, data_space = figure6_workload(d=16)
    program = compile_nest(nest, data_space, figure7_hierarchy())
    print(program.listing())
    print(
        f"\n(compiled {nest.num_iterations} iterations onto "
        f"{program.num_clients} clients in {program.compile_time_s * 1e3:.0f} ms)\n"
    )

    print("=== A recurrence with carried dependences (sync insertion) ===\n")
    config = scaled_config(16)  # 4 clients
    rec_nest, rec_ds = dependent_nest(config)
    rec_program = compile_nest(
        rec_nest,
        rec_ds,
        config.build_hierarchy(),
        mapper=InterProcessorMapper(dependence_strategy="sync"),
    )
    # The full listing is long; show one client plus the sync summary.
    first = sorted(rec_program.client_code)[0]
    listing = rec_program.client_code[first]
    head = "\n".join(listing.splitlines()[:12])
    print(f"// ===== client node {first} (first 12 lines) =====")
    print(head)
    print(
        f"\ntotal wait_for(...) directives inserted: "
        f"{rec_program.total_sync_directives()}"
    )


if __name__ == "__main__":
    main()
