#!/usr/bin/env python
"""Mapping a loop with carried dependences (paper §5.4).

A 1-D recurrence ``A[i] = f(A[i - 2d], A[i + 2d])`` carries true and
anti dependences at distance 2d.  The paper offers two extensions:

* **sync** — treat the dependences as ordinary data sharing (they
  already show up in the tags) and insert inter-processor
  synchronisation where a dependence crosses clients;
* **fuse** — force dependent iteration chunks into one cluster
  (infinite affinity edge weight) so no synchronisation is needed, at
  the cost of clustering freedom.

Run:  python examples/dependence_handling.py
"""

from repro.core.dependences import DependenceStrategy, count_cross_client_syncs
from repro.core.mapper import InterProcessorMapper
from repro.experiments.config import scaled_config
from repro.experiments.discussion import dependent_nest
from repro.polyhedral.dependence import find_dependences, outermost_parallel_loop
from repro.simulator.engine import simulate
from repro.simulator.streams import build_client_streams
from repro.storage.filesystem import ParallelFileSystem
from repro.util.rng import make_rng
from repro.util.tables import format_table


def main() -> None:
    config = scaled_config(8)
    nest, data_space = dependent_nest(config)
    print(f"workload: {nest}")

    deps = find_dependences(nest)
    print(f"dependences found: {len(deps)}")
    for dep in deps:
        print(f"  distance {dep.distance}, carried at loop {dep.level}")
    print(f"outermost parallel loop: {outermost_parallel_loop(nest)}")
    print("  (None: every loop carries a dependence -> synchronise or fuse)\n")

    hierarchy = config.build_hierarchy()
    rows = []
    for strategy in (DependenceStrategy.SYNC, DependenceStrategy.FUSE):
        mapper = InterProcessorMapper(dependence_strategy=strategy)
        mapping = mapper.map(nest, data_space, hierarchy, make_rng(0))
        syncs = count_cross_client_syncs(mapping, nest)
        streams = build_client_streams(mapping, nest, data_space)
        result = simulate(
            streams,
            hierarchy,
            ParallelFileSystem(
                config.num_storage_nodes, config.chunk_elems * 1024
            ),
            latency=config.latency,
            sync_counts=syncs,
            iterations_per_client=mapping.iteration_counts(),
        )
        rows.append(
            [
                strategy.value,
                sum(syncs.values()),
                f"{mapping.imbalance():.2f}",
                f"{result.io_latency_ms:.0f}",
                f"{result.execution_time_ms:.0f}",
            ]
        )

    print(
        format_table(
            ["strategy", "cross-client syncs", "imbalance", "io (ms)", "exec (ms)"],
            rows,
            title="Dependence strategies on the recurrence",
        )
    )
    print(
        "\nfuse eliminates synchronisation where chains fit one cluster but"
        "\nskews the load; sync keeps balance and pays a stall per crossing."
    )


if __name__ == "__main__":
    main()
