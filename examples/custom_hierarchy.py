#!/usr/bin/env python
"""Mapping onto a custom, four-level storage cache hierarchy.

The paper stresses that the scheme "can be tuned to target any
multi-level storage cache hierarchy".  This example builds a four-level
tree (client / I/O bridge / I/O aggregation / storage — a deeper BG/P-
style stack), defines a custom workload with the pattern generators, and
shows the mapping adapting to the extra level.

Run:  python examples/custom_hierarchy.py
"""

from repro import LatencyModel, uniform_hierarchy
from repro.core.baselines import OriginalMapper
from repro.core.mapper import InterProcessorMapper
from repro.simulator.engine import simulate
from repro.simulator.streams import build_client_streams
from repro.storage.filesystem import ParallelFileSystem
from repro.util.rng import make_rng
from repro.util.tables import format_table
from repro.workloads.generators import strided_1d


def main() -> None:
    # Four cache levels: 16 clients in pairs under 8 bridge caches,
    # 4 aggregation caches, 2 storage caches (dummy root above them).
    hierarchy = uniform_hierarchy(
        fanouts=[2, 2, 2, 2],
        capacities=[96, 48, 24, 12],  # chunks per node, storage level first
        level_names=["L4", "L3", "L2", "L1"],
    )
    print(f"hierarchy: {hierarchy}")
    print(f"cache levels on a client path: {hierarchy.level_names()}\n")

    nest, data_space = strided_1d(
        "custom",
        num_chunks=256,
        chunk_elems=32,
        stride_chunks=(0, 2, 4, -6),
        mod_window_chunks=1,
        sweeps=2,
        rotate_chunks=128,
    )
    print(f"workload: {nest}\n")

    latency = LatencyModel(level_ms=(0.005, 0.08, 0.2, 0.4))
    rows = []
    for mapper in (OriginalMapper(), InterProcessorMapper(schedule=True)):
        mapping = mapper.map(nest, data_space, hierarchy, make_rng(0))
        streams = build_client_streams(mapping, nest, data_space)
        result = simulate(
            streams,
            hierarchy,
            ParallelFileSystem(2, chunk_bytes=32 * 1024),
            latency=latency,
            iterations_per_client=mapping.iteration_counts(),
        )
        rates = result.miss_rates()
        rows.append(
            [mapper.name]
            + [f"{rates[l]:.2f}" for l in hierarchy.level_names()]
            + [result.disk_reads, f"{result.io_latency_ms:.0f}"]
        )

    print(
        format_table(
            ["version"] + hierarchy.level_names() + ["disk", "io (ms)"],
            rows,
            title="Four-level hierarchy: miss rates per level",
        )
    )


if __name__ == "__main__":
    main()
