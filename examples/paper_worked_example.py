#!/usr/bin/env python
"""The paper's §4.4 worked example, step by step (Figures 6-9, 16-17).

Reproduces, with the library's public API, every intermediate artifact
the paper shows for its running example:

* Fig. 6  — the code fragment (12-chunk array A, four references);
* Fig. 8  — the iteration-chunk tags and the affinity-graph edges;
* Fig. 9  — the two-level clustering (I/O-node level, then client level);
* Fig. 17 — the final per-client schedule;
* plus the Omega-``codegen``-style loop band listing for one chunk.

Run:  python examples/paper_worked_example.py
"""

from repro.core.chunking import form_iteration_chunks
from repro.core.clustering import distribute_iterations
from repro.core.graph import build_affinity_graph
from repro.core.scheduling import schedule_clients
from repro.polyhedral.codegen import generate_bands, render_code
from repro.workloads.paper_example import figure6_workload, figure7_hierarchy


def main() -> None:
    d = 16
    nest, data_space = figure6_workload(d=d)
    print("=== Fig. 6: the code fragment ===")
    print(f"  int A[{12 * d}];  // 12 data chunks of size d={d}")
    print("  for i = 0 to m-4d-1: A[i] = A[i%d] + A[i+4d] + A[i+2d]")
    print(f"  iterations: {nest.num_iterations}, references: {len(nest.references)}\n")

    chunk_set = form_iteration_chunks(nest, data_space)
    print("=== Fig. 8: iteration chunks and tags ===")
    for k, chunk in enumerate(chunk_set.chunks, start=1):
        lo, hi = chunk.iterations[0], chunk.iterations[-1]
        print(f"  gamma{k}: i = {lo}..{hi}   tag = {chunk.tag.to_bitstring()}")

    graph = build_affinity_graph(chunk_set)
    print("\n  affinity edges with weight >= 2 (1-based, as in the figure):")
    for i, j, w in graph.edges(min_weight=2):
        print(f"    gamma{i + 1} -- gamma{j + 1}   weight {int(w)}")

    hierarchy = figure7_hierarchy()
    distribution = distribute_iterations(chunk_set, hierarchy, 0.10)
    print("\n=== Fig. 9: hierarchical clustering ===")
    for io_node, clients in enumerate(((0, 1), (2, 3))):
        members = sorted(
            m + 1 for c in clients for m in distribution.assignment[c]
        )
        print(f"  IO{io_node}: gammas {members}")
    for client in range(4):
        members = sorted(m + 1 for m in distribution.assignment[client])
        print(f"  CN{client}: gammas {members}")

    schedule = schedule_clients(distribution, hierarchy, alpha=0.5, beta=0.5)
    print("\n=== Fig. 17: final schedule (execution order per client) ===")
    for client in range(4):
        order = ", ".join(f"gamma{m + 1}" for m in schedule[client])
        print(f"  CN{client}: {order}")

    print("\n=== codegen for CN0's first scheduled chunk ===")
    first = schedule[0][0]
    points = chunk_set.nest.space.delinearize(distribution.pool[first].iterations)
    bands = generate_bands(points)
    print(render_code(bands, ["i"], body="A[i] = A[i%d] + A[i+4d] + A[i+2d];"))


if __name__ == "__main__":
    main()
