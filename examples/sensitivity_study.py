#!/usr/bin/env python
"""A miniature sensitivity study with the experiment harness.

Sweeps cache capacity and chunk size around a small configuration and
prints the Inter-processor scheme's normalized I/O latency at each
point — the same methodology as the paper's Figures 13 and 14, at
interactive speed.

Run:  python examples/sensitivity_study.py
"""

from repro.experiments.config import scaled_config
from repro.experiments.harness import normalized_suite, run_suite
from repro.util.tables import format_table
from repro.workloads.suite import get_workload

WORKLOADS = ["hf", "apsi", "wupwise"]


def average_inter_io(config) -> float:
    results = run_suite(
        config,
        versions=("original", "inter+sched"),
        workloads=[get_workload(w) for w in WORKLOADS],
    )
    normalized = normalized_suite(results)
    return sum(n["inter+sched"]["io_latency"] for n in normalized.values()) / len(
        normalized
    )


def main() -> None:
    base = scaled_config(8)

    rows = []
    for mult in (0.5, 1.0, 2.0):
        l1, l2, l3 = base.cache_elems
        cfg = base.with_cache_capacities(
            int(l1 * mult), int(l2 * mult), int(l3 * mult)
        )
        rows.append([f"{mult:g}x caches", f"{average_inter_io(cfg):.3f}"])
    print(
        format_table(
            ["configuration", "inter+sched io (normalized)"],
            rows,
            title="Cache-capacity sweep (cf. paper Fig. 13)",
        )
    )
    print()

    rows = []
    for chunk in (32, 64, 128):
        cfg = base.with_chunk_elems(chunk)
        rows.append([f"{chunk}KB chunks", f"{average_inter_io(cfg):.3f}"])
    print(
        format_table(
            ["configuration", "inter+sched io (normalized)"],
            rows,
            title="Chunk-size sweep (cf. paper Fig. 14)",
        )
    )
    print(
        "\nLower is better (1.0 == the Original mapping).  Halving caches"
        "\nboosts the savings; growing the chunk coarsens the clustering"
        "\nand shrinks them — the paper's Figures 13 and 14 in miniature."
    )


if __name__ == "__main__":
    main()
